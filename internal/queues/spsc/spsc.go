// Package spsc implements a single-producer/single-consumer circular
// array queue with slot-only synchronization, after Torquati's
// cache-optimized FastForward-style rings (PAPERS.md:
// "Single-Producer/Single-Consumer Queues on Shared Cache Multi-Core
// Systems"). It is the specialization target of nbqueue.Fabric: when a
// fabric shard's attach-time census sees exactly one producer and one
// consumer, this ring replaces the MPMC shard's Evequoz ring on the hot
// path.
//
// The design point: the Evequoz rings spend their hot path on shared
// Head/Tail index RMWs — three CAS plus two FetchAndAdd per operation on
// Algorithm 2. With one producer and one consumer, no index needs to be
// shared at all. Each side keeps a private cursor and synchronizes
// through the slot word itself:
//
//   - the producer writes a value into slots[tail&mask] only after
//     observing it zero (consumed), then advances its private tail;
//   - the consumer reads slots[head&mask], and when nonzero takes the
//     value, stores zero back, and advances its private head.
//
// Zero is the empty marker — exactly the word contract the rest of the
// module already enforces (legal values are even, nonzero, below 2^40),
// so no bit is stolen and no value is remapped. A full queue and an
// empty queue are both discovered from the slot word alone: the producer
// seeing a nonzero slot at its cursor means the ring is full; the
// consumer seeing zero means it is empty.
//
// Per operation the cost is one atomic load plus one atomic store on one
// slot word, zero RMWs, and no shared-index cache line to ping-pong:
// consecutive slots share cache lines (slots are deliberately unpadded),
// so a line transfers once per CacheLine/8 operations in steady state
// instead of once per operation. The batch operations are the package's
// "temporal slipping" analogue of Torquati's multipush: a producer-side
// batch writes a run of consecutive slots while it holds the line, and a
// consumer-side batch drains a run the same way, so line transfers
// amortize across the whole batch even when producer and consumer run in
// lock-step.
//
// Discipline: at most one goroutine may enqueue and at most one may
// dequeue at any moment. The queue does not detect violations (that
// would reintroduce the shared words the design removes); nbqueue.Fabric
// enforces the census before routing operations here, and the bench
// harness drives it strictly 1p1c. Unlike the MPMC rings, sessions carry
// no registration state, so abandoning one leaks nothing.
package spsc

import (
	"fmt"
	"sync/atomic"

	"nbqueue/internal/pad"
	"nbqueue/internal/queue"
	"nbqueue/internal/trace"
	"nbqueue/internal/xsync"
)

// Queue is the SPSC ring. Create with New.
type Queue struct {
	slots []atomic.Uint64
	mask  uint64
	size  uint64
	// tail is the producer's cursor, head the consumer's. Each is
	// written by exactly one side, so the atomic ops are uncontended;
	// the padding keeps the occasional cross-side Len read from
	// dragging the owner's line into shared state more than it must.
	tail pad.Uint64
	head pad.Uint64
	ctrs *xsync.Counters
	hist *xsync.Histograms
	rec  *trace.Recorder
}

// Option configures a Queue.
type Option func(*Queue)

// WithCounters attaches instrumentation counters.
func WithCounters(c *xsync.Counters) Option { return func(q *Queue) { q.ctrs = c } }

// WithHistograms attaches latency histograms (sampled, like the other
// algorithms). Nil keeps the hot path free of clock reads.
func WithHistograms(h *xsync.Histograms) Option { return func(q *Queue) { q.hist = h } }

// WithTrace attaches a flight recorder; records ride the histogram
// sampling beat.
func WithTrace(r *trace.Recorder) Option { return func(q *Queue) { q.rec = r } }

// New returns an SPSC ring holding up to capacity items (rounded up to a
// power of two).
func New(capacity int, opts ...Option) *Queue {
	if capacity <= 0 {
		panic(fmt.Sprintf("spsc: capacity %d must be positive", capacity))
	}
	size := uint64(1)
	for size < uint64(capacity) {
		size <<= 1
	}
	q := &Queue{slots: make([]atomic.Uint64, size), mask: size - 1, size: size}
	for _, o := range opts {
		o(q)
	}
	return q
}

// Capacity returns the ring size.
func (q *Queue) Capacity() int { return int(q.size) }

// Name returns the algorithm's display name.
func (q *Queue) Name() string { return "FIFO Array SPSC" }

// Len estimates the queue depth from the two private cursors. The read
// is racy by design (neither cursor is synchronized with the other
// side's slot traffic), so treat it as a gauge: exact at quiescence,
// within one in-flight operation per side under load.
func (q *Queue) Len() int {
	t := q.tail.Load()
	h := q.head.Load()
	if t <= h {
		return 0
	}
	return int(t - h)
}

// Session is one side's handle. The queue itself holds all state; the
// session carries only instrumentation handles, so Attach is free and an
// abandoned session leaks nothing.
type Session struct {
	q    *Queue
	ctr  xsync.Handle
	hist xsync.HistHandle
	tr   trace.Handle
}

var _ queue.Session = (*Session)(nil)
var _ queue.BatchSession = (*Session)(nil)

// Attach returns a session for the calling goroutine. The SPSC
// discipline is the caller's: across all attached sessions, at most one
// goroutine enqueues and at most one dequeues at any moment.
func (q *Queue) Attach() queue.Session {
	return &Session{q: q, ctr: q.ctrs.Handle(), hist: q.hist.Handle(), tr: q.rec.Handle()}
}

// Detach releases the session (stateless; a no-op).
func (s *Session) Detach() {}

// Enqueue inserts v at the producer cursor, returning ErrFull when the
// slot there has not been consumed yet (ring full).
func (s *Session) Enqueue(v uint64) error {
	if err := queue.CheckValue(v); err != nil {
		return err
	}
	q := s.q
	start := s.hist.StartEnq()
	t := q.tail.Load()
	slot := &q.slots[t&q.mask]
	if slot.Load() != 0 {
		s.tr.OpSampled(trace.KindEnqueue, trace.OutcomeFull, 0)
		return queue.ErrFull
	}
	slot.Store(v)
	q.tail.Store(t + 1)
	s.ctr.Inc(xsync.OpEnqueue)
	s.hist.DoneEnq(start, 0)
	s.tr.Op(start, trace.KindEnqueue, trace.OutcomeOK, 0, 0, 0)
	return nil
}

// Dequeue removes the value at the consumer cursor; ok is false when the
// slot is empty.
func (s *Session) Dequeue() (uint64, bool) {
	q := s.q
	start := s.hist.StartDeq()
	h := q.head.Load()
	slot := &q.slots[h&q.mask]
	v := slot.Load()
	if v == 0 {
		return 0, false
	}
	slot.Store(0)
	q.head.Store(h + 1)
	s.ctr.Inc(xsync.OpDequeue)
	s.hist.DoneDeq(start, 0)
	s.tr.Op(start, trace.KindDequeue, trace.OutcomeOK, 0, 0, 0)
	return v, true
}

// Peek returns the word at the consumer cursor without consuming it; ok
// is false when the ring is observed empty. Peek/Pop split the dequeue
// for payload layers that keep per-slot data alongside the ring
// (nbqueue's fabric rings): between a successful Peek and the matching
// Pop the slot still reads occupied, so the producer cannot reuse it —
// the payload read is ordered before the slot's release.
func (s *Session) Peek() (uint64, bool) {
	q := s.q
	v := q.slots[q.head.Load()&q.mask].Load()
	return v, v != 0
}

// Pop consumes the slot returned by the preceding successful Peek:
// releases it to the producer and advances the consumer cursor. Calling
// Pop without a successful Peek corrupts the ring.
func (s *Session) Pop() {
	q := s.q
	h := q.head.Load()
	q.slots[h&q.mask].Store(0)
	q.head.Store(h + 1)
	s.ctr.Inc(xsync.OpDequeue)
}

// ProducerPos returns the producer cursor: the monotonic (unmasked)
// position the next successful Enqueue will fill. Producer-side only —
// the value is exact for the enqueuing goroutine and a racy gauge for
// anyone else.
func (q *Queue) ProducerPos() uint64 { return q.tail.Load() }

// EnqueueBatch writes the values of vs into consecutive slots while the
// producer holds their cache lines — the multipush idiom. Stops at the
// first unconsumed slot with (n, ErrFull); a contract violation in any
// element returns (0, ErrValue) before anything is enqueued.
func (s *Session) EnqueueBatch(vs []uint64) (int, error) {
	for _, v := range vs {
		if err := queue.CheckValue(v); err != nil {
			return 0, err
		}
	}
	q := s.q
	start := s.hist.StartEnq()
	t := q.tail.Load()
	n := 0
	for _, v := range vs {
		slot := &q.slots[(t+uint64(n))&q.mask]
		if slot.Load() != 0 {
			break
		}
		slot.Store(v)
		n++
	}
	if n > 0 {
		q.tail.Store(t + uint64(n))
		s.ctr.Add(xsync.OpEnqueue, uint64(n))
	}
	s.hist.DoneEnqBatch(start, 0, n)
	if n < len(vs) {
		s.tr.OpSampled(trace.KindEnqueueBatch, trace.OutcomeFull, n)
		return n, queue.ErrFull
	}
	s.tr.Op(start, trace.KindEnqueueBatch, trace.OutcomeOK, 0, 0, n)
	return n, nil
}

// DequeueBatch drains up to len(dst) consecutive slots; n < len(dst)
// means the queue was observed empty after n elements.
func (s *Session) DequeueBatch(dst []uint64) (int, error) {
	q := s.q
	start := s.hist.StartDeq()
	h := q.head.Load()
	n := 0
	for n < len(dst) {
		slot := &q.slots[(h+uint64(n))&q.mask]
		v := slot.Load()
		if v == 0 {
			break
		}
		dst[n] = v
		slot.Store(0)
		n++
	}
	if n > 0 {
		q.head.Store(h + uint64(n))
		s.ctr.Add(xsync.OpDequeue, uint64(n))
	}
	s.hist.DoneDeqBatch(start, 0, n)
	s.tr.Op(start, trace.KindDequeueBatch, trace.OutcomeOK, 0, 0, n)
	return n, nil
}
