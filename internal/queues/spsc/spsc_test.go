package spsc_test

import (
	"runtime"
	"sync"
	"testing"

	"nbqueue/internal/lincheck"
	"nbqueue/internal/queue"
	"nbqueue/internal/queues/spsc"
	"nbqueue/internal/queuetest"
	"nbqueue/internal/xsync"
)

func maker(capacity int) queue.Queue { return spsc.New(capacity) }

// The MPMC conformance suite does not apply (the whole point of the ring
// is that it refuses to pay for multi-producer safety), so run the
// sequential subtests directly and cover the concurrent 1p1c contract
// with dedicated tests below.
func TestSequentialFIFO(t *testing.T)  { queuetest.SequentialFIFO(t, maker) }
func TestFullEmpty(t *testing.T)       { queuetest.FullEmpty(t, maker, false) }
func TestValueValidation(t *testing.T) { queuetest.ValueValidation(t, maker) }
func TestBatchSequential(t *testing.T) { queuetest.BatchSequential(t, maker, false) }
func TestModelSequential(t *testing.T) { queuetest.ModelSequential(t, maker) }
func TestDetachReattach(t *testing.T)  { queuetest.DetachReattach(t, maker) }

func TestCapacityRounding(t *testing.T) {
	if got := spsc.New(100).Capacity(); got != 128 {
		t.Errorf("Capacity = %d, want 128", got)
	}
	if got := spsc.New(1).Capacity(); got != 1 {
		t.Errorf("Capacity = %d, want 1", got)
	}
}

// TestConcurrent1p1c drives one producer and one consumer flat out and
// asserts every value arrives exactly once, in order.
func TestConcurrent1p1c(t *testing.T) {
	const total = 50000
	q := spsc.New(64)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s := q.Attach()
		defer s.Detach()
		for i := 0; i < total; {
			if err := s.Enqueue(uint64(i+1) << 1); err == nil {
				i++
			} else {
				runtime.Gosched() // single-CPU boxes: let the consumer drain
			}
		}
	}()
	s := q.Attach()
	defer s.Detach()
	want := uint64(1) << 1
	for got := 0; got < total; {
		v, ok := s.Dequeue()
		if !ok {
			runtime.Gosched()
			continue
		}
		if v != want {
			t.Fatalf("dequeue %d: got %d, want %d", got, v, want)
		}
		want += 2
		got++
	}
	wg.Wait()
	if v, ok := s.Dequeue(); ok {
		t.Fatalf("queue not empty after drain: got %d", v)
	}
}

// TestConcurrentBatches is the batched variant: the producer pushes runs
// with EnqueueBatch, the consumer drains runs with DequeueBatch, and the
// interleaved history must still be FIFO (verified by lincheck).
func TestConcurrentBatches(t *testing.T) {
	const rounds = 4000
	const maxBatch = 7
	q := spsc.New(64)
	rec := lincheck.NewRecorder(2, rounds*maxBatch)
	var wg sync.WaitGroup
	start := xsync.NewBarrier(2)
	wg.Add(1)
	go func() {
		defer wg.Done()
		s := q.Attach()
		defer s.Detach()
		log := rec.Log(0)
		buf := make([]uint64, maxBatch)
		next := 1
		start.Wait()
		for i := 0; i < rounds; i++ {
			vs := buf[:1+i%maxBatch]
			for k := range vs {
				vs[k] = uint64(next) << 1
				next++
			}
			inv := log.Begin()
			n, _ := queue.EnqueueBatch(s, vs)
			log.EnqBatch(inv, vs, n)
		}
	}()
	func() {
		s := q.Attach()
		defer s.Detach()
		log := rec.Log(1)
		dst := make([]uint64, maxBatch)
		start.Wait()
		for i := 0; i < rounds; i++ {
			d := dst[:1+i%maxBatch]
			inv := log.Begin()
			n, _ := queue.DequeueBatch(s, d)
			log.DeqBatch(inv, d, n)
		}
	}()
	wg.Wait()
	if err := lincheck.CheckFast(rec.History()); err != nil {
		t.Fatal(err)
	}
}

// TestBatchPartialFull verifies the positional-partial contract: a batch
// hitting a full ring reports the enqueued prefix with ErrFull.
func TestBatchPartialFull(t *testing.T) {
	q := spsc.New(4)
	s := q.Attach()
	defer s.Detach()
	vs := []uint64{2, 4, 6, 8, 10, 12}
	n, err := s.(queue.BatchSession).EnqueueBatch(vs)
	if n != 4 || err != queue.ErrFull {
		t.Fatalf("EnqueueBatch = (%d, %v), want (4, ErrFull)", n, err)
	}
	dst := make([]uint64, 8)
	n, err = s.(queue.BatchSession).DequeueBatch(dst)
	if n != 4 || err != nil {
		t.Fatalf("DequeueBatch = (%d, %v), want (4, nil)", n, err)
	}
	for i, want := range []uint64{2, 4, 6, 8} {
		if dst[i] != want {
			t.Errorf("dst[%d] = %d, want %d", i, dst[i], want)
		}
	}
}

func TestLen(t *testing.T) {
	q := spsc.New(8)
	s := q.Attach()
	defer s.Detach()
	for i := 0; i < 5; i++ {
		if err := s.Enqueue(uint64(i+1) << 1); err != nil {
			t.Fatal(err)
		}
	}
	if got := q.Len(); got != 5 {
		t.Errorf("Len = %d, want 5", got)
	}
	s.Dequeue()
	if got := q.Len(); got != 4 {
		t.Errorf("Len after dequeue = %d, want 4", got)
	}
}
