// Package treiber implements the FIFO queue attributed to Treiber in the
// paper's §2 (R. Treiber, "Systems Programming: Coping With Parallelism",
// IBM Almaden RJ5118, 1986 — reference [13]): a linked structure where
// "the enqueue operation requires only a single step, [but] the running
// time needed for the dequeue operation is proportional to the number of
// items in the queue".
//
// Realization: the queue is a Treiber *stack* of nodes, newest at the
// top. Enqueue is the classic single-CAS push. Dequeue walks from the top
// to the oldest node (the bottom) and unlinks it — either by CASing the
// top pointer when the stack has one node, or by CASing the predecessor's
// next link otherwise. The walk is the O(n) cost §2 criticizes, and the
// related-work scaling experiment measures exactly that growth.
//
// Unlinking at the tail races with other dequeuers and with node reuse,
// so the walk is protected by hazard pointers: the predecessor and victim
// are published before the unlink CAS, and removed nodes are retired, not
// freed — the same reclamation machinery as the MS baselines.
package treiber

import (
	"fmt"

	"nbqueue/internal/arena"
	"nbqueue/internal/hazard"
	"nbqueue/internal/pad"
	"nbqueue/internal/queue"
	"nbqueue/internal/xsync"
)

// Queue is a Treiber-style FIFO. Create with New.
type Queue struct {
	top        pad.Uint64 // newest node, or Nil
	nodes      *arena.Arena
	dom        *hazard.Domain
	ctrs       *xsync.Counters
	cap        int
	maxThreads int
}

// Option configures a Queue.
type Option func(*Queue)

// WithCounters attaches instrumentation counters.
func WithCounters(c *xsync.Counters) Option { return func(q *Queue) { q.ctrs = c } }

// WithMaxThreads sizes reclamation headroom, as in msqueue.
func WithMaxThreads(n int) Option { return func(q *Queue) { q.maxThreads = n } }

const defaultMaxThreads = 128

// New returns a queue able to hold capacity items.
func New(capacity int, opts ...Option) *Queue {
	if capacity <= 0 {
		panic(fmt.Sprintf("treiber: capacity %d must be positive", capacity))
	}
	q := &Queue{cap: capacity, maxThreads: defaultMaxThreads}
	for _, o := range opts {
		o(q)
	}
	q.nodes = arena.New(capacity + hazard.RetireFactor*q.maxThreads*q.maxThreads)
	q.dom = hazard.NewDomain(q.nodes, true, 0)
	q.top.Store(arena.Nil)
	return q
}

// Capacity returns the nominal capacity.
func (q *Queue) Capacity() int { return q.cap }

// Name returns the algorithm's display name.
func (q *Queue) Name() string { return "Treiber" }

// SpaceRecords reports the hazard records ever created.
func (q *Queue) SpaceRecords() int { return q.dom.Records() }

// SpaceParked reports nodes withheld on retired lists; quiescent use
// only.
func (q *Queue) SpaceParked() int { return q.dom.Parked() }

// Session carries the goroutine's hazard record.
type Session struct {
	q   *Queue
	rec *hazard.Record
	ctr xsync.Handle
}

var _ queue.Session = (*Session)(nil)

// Attach acquires a hazard record for the calling goroutine.
func (q *Queue) Attach() queue.Session {
	return &Session{q: q, rec: q.dom.Acquire(), ctr: q.ctrs.Handle()}
}

// Detach releases the hazard record.
func (s *Session) Detach() { s.rec.Release() }

// Hazard slots: 0 = predecessor, 1 = current walk node.
const (
	hpPred = 0
	hpCurr = 1
)

// Enqueue pushes v onto the top — the single-step operation of [13].
func (s *Session) Enqueue(v uint64) error {
	if err := queue.CheckValue(v); err != nil {
		return err
	}
	q := s.q
	n := q.nodes.Alloc()
	if n == arena.Nil {
		s.rec.Scan()
		if n = q.nodes.Alloc(); n == arena.Nil {
			return queue.ErrFull
		}
	}
	node := q.nodes.Get(n)
	node.Value.Store(v)
	for {
		top := q.top.Load()
		node.Next.Store(top)
		s.ctr.Inc(xsync.OpCASAttempt)
		if q.top.CompareAndSwap(top, n) {
			s.ctr.Inc(xsync.OpCASSuccess)
			s.ctr.Inc(xsync.OpEnqueue)
			return nil
		}
	}
}

// Dequeue walks to the oldest node and unlinks it. O(queue length).
func (s *Session) Dequeue() (uint64, bool) {
	q := s.q
	for {
		top := s.rec.Protect(hpCurr, q.top.Ptr())
		if top == arena.Nil {
			s.rec.Clear(hpCurr)
			return 0, false
		}
		// Walk pred/curr until curr is the last node. pred starts Nil
		// (meaning "top pointer itself is the predecessor link").
		pred := arena.Nil
		curr := top
		for {
			next := q.nodes.Get(curr).Next.Load()
			if next == arena.Nil {
				break
			}
			// Advance: curr becomes pred (rotate the hazard slots so
			// both stay protected).
			s.rec.Set(hpPred, curr)
			// Re-validate the walk: the node we came through must still
			// be reachable. Cheapest sound check: pred's next (or top)
			// still points at what we think follows it.
			if pred == arena.Nil {
				if q.top.Load() != curr {
					break // restart from the top
				}
			}
			pred = curr
			curr = next
			s.rec.Set(hpCurr, curr)
			if q.nodes.Get(pred).Next.Load() != curr {
				// Unlinked under us; restart.
				pred = arena.Nil
				break
			}
		}
		if pred == arena.Nil && curr != arena.Nil && q.nodes.Get(curr).Next.Load() != arena.Nil {
			continue // walk was invalidated; retry from the top
		}
		if curr == arena.Nil {
			continue
		}
		v := q.nodes.Get(curr).Value.Load()
		var unlinked bool
		s.ctr.Inc(xsync.OpCASAttempt)
		if pred == arena.Nil {
			// curr is the only node: pop via the top pointer.
			unlinked = q.top.CompareAndSwap(curr, arena.Nil)
		} else {
			unlinked = q.nodes.Get(pred).Next.CompareAndSwap(curr, arena.Nil)
		}
		if unlinked {
			s.ctr.Inc(xsync.OpCASSuccess)
			s.rec.Clear(hpPred)
			s.rec.Clear(hpCurr)
			s.rec.Retire(curr)
			s.ctr.Inc(xsync.OpDequeue)
			return v, true
		}
		// Lost the race (another dequeuer took the tail, or an enqueue
		// changed the top in the single-node case); retry.
	}
}
