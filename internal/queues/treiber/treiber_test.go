package treiber_test

import (
	"testing"

	"nbqueue/internal/queue"
	"nbqueue/internal/queues/treiber"
	"nbqueue/internal/queuetest"
	"nbqueue/internal/xsync"
)

func maker(capacity int) queue.Queue {
	return treiber.New(capacity, treiber.WithMaxThreads(16))
}

func TestConformance(t *testing.T) {
	queuetest.RunAllWith(t, maker, queuetest.Opts{SoftCapacity: true})
}

// TestEnqueueSingleCAS verifies the §2 claim "the enqueue operation
// requires only a single step": uncontended, exactly one successful CAS
// per enqueue.
func TestEnqueueSingleCAS(t *testing.T) {
	ctrs := xsync.NewCounters()
	q := treiber.New(512, treiber.WithCounters(ctrs), treiber.WithMaxThreads(2))
	s := q.Attach()
	defer s.Detach()
	const n = 500
	for i := 0; i < n; i++ {
		if err := s.Enqueue(uint64(i+1) << 1); err != nil {
			t.Fatal(err)
		}
	}
	if got := ctrs.Total(xsync.OpCASSuccess); got != n {
		t.Fatalf("successful CAS = %d, want exactly %d (single-step enqueue)", got, n)
	}
}

// TestDequeueWalksToOldest: FIFO despite LIFO linkage.
func TestDequeueWalksToOldest(t *testing.T) {
	q := treiber.New(64, treiber.WithMaxThreads(2))
	s := q.Attach()
	defer s.Detach()
	for i := 0; i < 20; i++ {
		if err := s.Enqueue(uint64(i+1) << 1); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		v, ok := s.Dequeue()
		if !ok || v != uint64(i+1)<<1 {
			t.Fatalf("dequeue %d = %#x,%v", i, v, ok)
		}
	}
}

// TestReclamationBounded: node reuse through the hazard domain keeps a
// small arena serviceable across many operations.
func TestReclamationBounded(t *testing.T) {
	q := treiber.New(8, treiber.WithMaxThreads(2))
	s := q.Attach()
	defer s.Detach()
	for i := 0; i < 10000; i++ {
		v := uint64(i+1) << 1
		if err := s.Enqueue(v); err != nil {
			t.Fatalf("enqueue %d: %v", i, err)
		}
		got, ok := s.Dequeue()
		if !ok || got != v {
			t.Fatalf("dequeue %d = %#x,%v", i, got, ok)
		}
	}
}

// TestInterleavedDepth: dequeue-from-depth correctness when the stack
// holds several items and operations interleave.
func TestInterleavedDepth(t *testing.T) {
	q := treiber.New(1024, treiber.WithMaxThreads(2))
	s := q.Attach()
	defer s.Detach()
	var model []uint64
	n := uint64(1)
	for round := 0; round < 200; round++ {
		for k := 0; k <= round%7; k++ {
			v := n << 1
			n++
			if err := s.Enqueue(v); err != nil {
				t.Fatal(err)
			}
			model = append(model, v)
		}
		for k := 0; k < round%5; k++ {
			if len(model) == 0 {
				break
			}
			v, ok := s.Dequeue()
			if !ok || v != model[0] {
				t.Fatalf("round %d: dequeue = %#x,%v want %#x", round, v, ok, model[0])
			}
			model = model[1:]
		}
	}
	for _, want := range model {
		v, ok := s.Dequeue()
		if !ok || v != want {
			t.Fatalf("drain: dequeue = %#x,%v want %#x", v, ok, want)
		}
	}
}
