// Package tsigaszhang implements the Tsigas & Zhang array-based
// non-blocking FIFO queue (SPAA 2001, the paper's reference [14]) as a
// related-work extension. It is the first practical circular-array queue
// on single-word primitives and the design whose two weaknesses motivate
// the Evequoz algorithms:
//
//   - its indices are *actual array positions* updated by CAS, so its
//     linearizability argument "assumes that an enqueue or a dequeue
//     operation cannot be preempted by more than s similar operations"
//     (not population-oblivious — a thread preempted for a full index
//     rewind can corrupt the queue);
//   - data-ABA is only probabilistically avoided when values repeat.
//
// The null-ABA problem it *does* solve with the celebrated two-null
// scheme: empty slots are marked null0 or null1 depending on which "lap"
// consumed them, the dequeuer re-marks freed slots with the null of the
// consumed region, and the interpretation switches when Head rewinds past
// slot 0 (§3 of the Evequoz paper describes the trick). An enqueuer's
// install CAS expects the exact null it read, so an enqueue into a
// stale-lap slot fails.
//
// Deviations from SPAA'01, documented per DESIGN.md: Tail is updated on
// every successful enqueue rather than every second one (the lagged-tail
// optimization is orthogonal to the correctness structure and its absence
// only costs one extra CAS), and the helper that advances a lagging Head
// over nulls follows the simplified form in the Evequoz paper's
// description. Head points at the slot *before* the first item (a moving
// dummy), as in the original.
package tsigaszhang

import (
	"fmt"
	"sync/atomic"

	"nbqueue/internal/pad"
	"nbqueue/internal/queue"
	"nbqueue/internal/xsync"
)

// The two empty markers. Null0 marks slots never written in the current
// interpretation ("3rd interval"); Null1 marks slots whose item was
// consumed ("1st interval"). Both are outside the legal value domain
// (values are nonzero, even, < 2^40).
const (
	null0 = uint64(0)
	null1 = uint64(1) << 41
)

func isNull(v uint64) bool { return v == null0 || v == null1 }

func otherNull(v uint64) uint64 {
	if v == null0 {
		return null1
	}
	return null0
}

// Queue is a Tsigas–Zhang array queue. Create with New.
type Queue struct {
	head  pad.Uint64 // array index of the slot before the first item
	tail  pad.Uint64 // array index of the first free slot
	slots []atomic.Uint64
	size  uint64
	ctrs  *xsync.Counters
}

// Option configures a Queue.
type Option func(*Queue)

// WithCounters attaches instrumentation counters.
func WithCounters(c *xsync.Counters) Option { return func(q *Queue) { q.ctrs = c } }

// New returns a queue holding up to capacity items. The array has
// capacity+2 slots: one for the moving dummy and one kept free to
// disambiguate full from empty.
func New(capacity int, opts ...Option) *Queue {
	if capacity <= 0 {
		panic(fmt.Sprintf("tsigaszhang: capacity %d must be positive", capacity))
	}
	q := &Queue{
		slots: make([]atomic.Uint64, capacity+2),
		size:  uint64(capacity + 2),
	}
	for _, o := range opts {
		o(q)
	}
	// All slots start as null0; the dummy position is slot 0.
	q.head.Store(0)
	q.tail.Store(1)
	return q
}

// Capacity returns the maximum number of queued items.
func (q *Queue) Capacity() int { return int(q.size) - 2 }

// Name returns the algorithm's display name.
func (q *Queue) Name() string { return "Tsigas-Zhang" }

// Session is stateless.
type Session struct {
	q   *Queue
	ctr xsync.Handle
}

var _ queue.Session = (*Session)(nil)

// Attach returns a session for the calling goroutine.
func (q *Queue) Attach() queue.Session {
	return &Session{q: q, ctr: q.ctrs.Handle()}
}

// Detach releases the session (a no-op for this algorithm).
func (s *Session) Detach() {}

func (s *Session) cas(w *atomic.Uint64, old, new uint64) bool {
	s.ctr.Inc(xsync.OpCASAttempt)
	if w.CompareAndSwap(old, new) {
		s.ctr.Inc(xsync.OpCASSuccess)
		return true
	}
	return false
}

// Enqueue inserts v at the tail.
func (s *Session) Enqueue(v uint64) error {
	if err := queue.CheckValue(v); err != nil {
		return err
	}
	q := s.q
	for {
		te := q.tail.Load()
		ate := te
		tt := q.slots[ate].Load()
		tmp := (ate + 1) % q.size
		// Scan forward over occupied slots to find the actual tail (Tail
		// may lag behind delayed enqueuers).
		for !isNull(tt) {
			if te != q.tail.Load() {
				break
			}
			if tmp == q.head.Load() {
				break
			}
			tt = q.slots[tmp].Load()
			ate = tmp
			tmp = (ate + 1) % q.size
		}
		if te != q.tail.Load() {
			continue
		}
		if tmp == q.head.Load() {
			// The scan hit the dummy: the array is full unless Head is
			// lagging behind completed dequeues.
			ate = (tmp + 1) % q.size
			tt = q.slots[ate].Load()
			if !isNull(tt) {
				return queue.ErrFull
			}
			// Help the lagging dequeuer by advancing Head over the
			// already-freed slot, then retry.
			s.cas(q.head.Ptr(), tmp, ate)
			continue
		}
		if !isNull(tt) || te != q.tail.Load() {
			continue
		}
		// Install expecting the exact null we read: an enqueue into a
		// slot whose lap interpretation changed fails here (null-ABA
		// defence).
		if s.cas(&q.slots[ate], tt, v) {
			s.cas(q.tail.Ptr(), te, tmp)
			s.ctr.Inc(xsync.OpEnqueue)
			return nil
		}
	}
}

// Dequeue removes the head value.
func (s *Session) Dequeue() (uint64, bool) {
	q := s.q
	for {
		th := q.head.Load()
		tmp := (th + 1) % q.size
		tt := q.slots[tmp].Load()
		// Scan forward over nulls to find the first item (Head may lag).
		for isNull(tt) {
			if th != q.head.Load() {
				break
			}
			if tmp == q.tail.Load() {
				return 0, false
			}
			tmp = (tmp + 1) % q.size
			tt = q.slots[tmp].Load()
		}
		if th != q.head.Load() {
			continue
		}
		if tmp == q.tail.Load() {
			// Tail lagging behind items; help and retry.
			s.cas(q.tail.Ptr(), tmp, (tmp+1)%q.size)
			continue
		}
		if isNull(tt) {
			continue
		}
		// The null to write comes from the region Head is consuming; the
		// interpretation switches when the new head position rewinds
		// past slot 0.
		tnull := q.slots[th].Load()
		if !isNull(tnull) {
			continue
		}
		if tmp < th {
			tnull = otherNull(tnull)
		}
		if s.cas(&q.slots[tmp], tt, tnull) {
			s.cas(q.head.Ptr(), th, tmp)
			s.ctr.Inc(xsync.OpDequeue)
			return tt, true
		}
	}
}

// Len reports the current number of queued items (approximate under
// concurrency).
func (q *Queue) Len() int {
	h, t := q.head.Load(), q.tail.Load()
	return int((t + q.size - h - 1) % q.size)
}
