package tsigaszhang_test

import (
	"testing"

	"nbqueue/internal/queue"
	"nbqueue/internal/queues/tsigaszhang"
	"nbqueue/internal/queuetest"
)

func maker(capacity int) queue.Queue { return tsigaszhang.New(capacity) }

func TestConformance(t *testing.T) {
	queuetest.RunAll(t, maker)
}

// TestNullLapSwitch drives the head index through many rewinds of slot 0
// on a small array, exercising the null0/null1 interpretation switch that
// solves the null-ABA problem (§3 of the Evequoz paper describes the
// scheme).
func TestNullLapSwitch(t *testing.T) {
	q := tsigaszhang.New(3)
	s := q.Attach()
	defer s.Detach()
	for i := 0; i < 50000; i++ {
		v := uint64(i+1) << 1
		if err := s.Enqueue(v); err != nil {
			t.Fatalf("enqueue %d: %v", i, err)
		}
		got, ok := s.Dequeue()
		if !ok || got != v {
			t.Fatalf("dequeue %d = %#x,%v want %#x", i, got, ok, v)
		}
	}
}

// TestCapacityExact verifies the queue holds exactly the advertised
// number of items before reporting full.
func TestCapacityExact(t *testing.T) {
	for _, c := range []int{1, 2, 5, 8} {
		q := tsigaszhang.New(c)
		s := q.Attach()
		n := 0
		for ; ; n++ {
			if err := s.Enqueue(uint64(n+1) << 1); err != nil {
				if err != queue.ErrFull {
					t.Fatalf("cap=%d enqueue: %v", c, err)
				}
				break
			}
			if n > c {
				t.Fatalf("cap=%d accepted %d items", c, n+1)
			}
		}
		if n != c {
			t.Errorf("cap=%d accepted %d items before full", c, n)
		}
		s.Detach()
	}
}

// TestTinyQueueContention drives heavy contention on tiny arrays so the
// helping paths fire: the enqueue scan over occupied slots (lagging
// Tail), the dequeue scan over nulls (lagging Head), and the full-check
// help that advances a stale Head.
func TestTinyQueueContention(t *testing.T) {
	for _, c := range []int{1, 2, 3} {
		queuetest.StressMPMC(t, func(int) queue.Queue { return tsigaszhang.New(c) }, 2, 2, 3000)
	}
}

// TestFullWithLaggingHead exercises the enqueue branch that helps a
// lagging dequeuer by advancing Head over an already-freed slot instead
// of declaring the queue full.
func TestFullWithLaggingHead(t *testing.T) {
	q := tsigaszhang.New(4)
	s := q.Attach()
	defer s.Detach()
	// Fill, drain one, fill again, repeatedly: the head/tail dance
	// crosses the full boundary from every array offset.
	n := uint64(1)
	for round := 0; round < 64; round++ {
		for {
			if err := s.Enqueue(n << 1); err != nil {
				break
			}
			n++
		}
		if _, ok := s.Dequeue(); !ok {
			t.Fatal("full queue reported empty")
		}
		if err := s.Enqueue(n << 1); err != nil {
			t.Fatalf("round %d: enqueue after drain-one: %v", round, err)
		}
		n++
		// Drain fully to rotate the window.
		for {
			if _, ok := s.Dequeue(); !ok {
				break
			}
		}
	}
}

// TestLen reports the resident count through wrap-arounds.
func TestLen(t *testing.T) {
	q := tsigaszhang.New(3)
	s := q.Attach()
	defer s.Detach()
	if q.Len() != 0 {
		t.Fatalf("fresh Len = %d", q.Len())
	}
	for i := 0; i < 3; i++ {
		if err := s.Enqueue(uint64(i+1) << 1); err != nil {
			t.Fatal(err)
		}
		if q.Len() != i+1 {
			t.Fatalf("Len after %d enqueues = %d", i+1, q.Len())
		}
	}
	s.Dequeue()
	if q.Len() != 2 {
		t.Fatalf("Len after dequeue = %d", q.Len())
	}
}

// TestMixedHeavy interleaves bursts so scans start from many offsets.
func TestMixedHeavy(t *testing.T) {
	q := tsigaszhang.New(8)
	s := q.Attach()
	defer s.Detach()
	var model []uint64
	n := uint64(1)
	for round := 0; round < 500; round++ {
		for k := 0; k <= round%4; k++ {
			v := n << 1
			if err := s.Enqueue(v); err != nil {
				break
			}
			model = append(model, v)
			n++
		}
		for k := 0; k < round%3; k++ {
			if len(model) == 0 {
				break
			}
			v, ok := s.Dequeue()
			if !ok || v != model[0] {
				t.Fatalf("round %d: dequeue = %#x,%v want %#x", round, v, ok, model[0])
			}
			model = model[1:]
		}
	}
}
