// Package twolock implements Michael & Scott's two-lock blocking queue
// (from the same JPDC 1998 paper as the lock-free variant) as the
// blocking reference point. It is not measured in the paper's Figure 6,
// but it is the natural "what mutual exclusion costs" yardstick the
// paper's introduction argues against — lock-based queues block under
// preemption, which is exactly the pathology the non-blocking designs
// avoid — so the extended benchmarks include it.
//
// One mutex guards the head, another the tail; a dummy node decouples
// them so an enqueue and a dequeue never contend with each other, only
// with operations of their own kind.
package twolock

import (
	"fmt"
	"sync"

	"nbqueue/internal/arena"
	"nbqueue/internal/queue"
	"nbqueue/internal/xsync"
)

// Queue is a two-lock Michael–Scott queue. Create with New.
type Queue struct {
	headMu sync.Mutex
	head   arena.Handle
	_      [64]byte
	tailMu sync.Mutex
	tail   arena.Handle
	nodes  *arena.Arena
	ctrs   *xsync.Counters
	cap    int
}

// Option configures a Queue.
type Option func(*Queue)

// WithCounters attaches instrumentation counters.
func WithCounters(c *xsync.Counters) Option { return func(q *Queue) { q.ctrs = c } }

// New returns a queue able to hold capacity items.
func New(capacity int, opts ...Option) *Queue {
	if capacity <= 0 {
		panic(fmt.Sprintf("twolock: capacity %d must be positive", capacity))
	}
	nodes := arena.New(capacity + 1)
	q := &Queue{nodes: nodes, cap: capacity}
	dummy := nodes.Alloc()
	nodes.Get(dummy).Next.Store(arena.Nil)
	q.head = dummy
	q.tail = dummy
	for _, o := range opts {
		o(q)
	}
	return q
}

// Capacity returns the maximum number of queued items.
func (q *Queue) Capacity() int { return q.cap }

// Name returns the algorithm's display name.
func (q *Queue) Name() string { return "MS Two-Lock" }

// Session is stateless.
type Session struct {
	q   *Queue
	ctr xsync.Handle
}

var _ queue.Session = (*Session)(nil)

// Attach returns a session for the calling goroutine.
func (q *Queue) Attach() queue.Session {
	return &Session{q: q, ctr: q.ctrs.Handle()}
}

// Detach releases the session (a no-op for this algorithm).
func (s *Session) Detach() {}

// Enqueue inserts v at the tail, blocking on the tail lock.
func (s *Session) Enqueue(v uint64) error {
	if err := queue.CheckValue(v); err != nil {
		return err
	}
	q := s.q
	n := q.nodes.Alloc()
	if n == arena.Nil {
		return queue.ErrFull
	}
	node := q.nodes.Get(n)
	node.Value.Store(v)
	node.Next.Store(arena.Nil)
	q.tailMu.Lock()
	q.nodes.Get(q.tail).Next.Store(n)
	q.tail = n
	q.tailMu.Unlock()
	s.ctr.Inc(xsync.OpEnqueue)
	return nil
}

// Dequeue removes the head value, blocking on the head lock.
func (s *Session) Dequeue() (uint64, bool) {
	q := s.q
	q.headMu.Lock()
	h := q.head
	next := q.nodes.Get(h).Next.Load()
	if next == arena.Nil {
		q.headMu.Unlock()
		return 0, false
	}
	v := q.nodes.Get(next).Value.Load()
	q.head = next
	q.headMu.Unlock()
	// The old dummy is ours alone once head has moved: the head lock
	// serializes dequeuers, and enqueuers never touch nodes before tail.
	q.nodes.Free(h)
	s.ctr.Inc(xsync.OpDequeue)
	return v, true
}
