package twolock_test

import (
	"testing"

	"nbqueue/internal/queue"
	"nbqueue/internal/queues/twolock"
	"nbqueue/internal/queuetest"
)

func maker(capacity int) queue.Queue { return twolock.New(capacity) }

func TestConformance(t *testing.T) {
	queuetest.RunAll(t, maker)
}

// TestNodeRecycling pushes far more traffic through than the arena holds;
// the lock-serialized free is immediate, so this must never see ErrFull.
func TestNodeRecycling(t *testing.T) {
	q := twolock.New(4)
	s := q.Attach()
	defer s.Detach()
	for i := 0; i < 20000; i++ {
		v := uint64(i+1) << 1
		if err := s.Enqueue(v); err != nil {
			t.Fatalf("enqueue %d: %v", i, err)
		}
		got, ok := s.Dequeue()
		if !ok || got != v {
			t.Fatalf("dequeue %d = %#x,%v want %#x", i, got, ok, v)
		}
	}
}
