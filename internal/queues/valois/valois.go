// Package valois implements the circular-array FIFO queue attributed to
// Valois in the paper's §2 (reference [15]): "an algorithm based on a
// bounded circular array [where] both enqueue and dequeue operations
// require that two array locations which may not be adjacent be
// simultaneously updated with a CAS primitive."
//
// Layout: one atomic2.Memory holds the Head counter (word 0), the Tail
// counter (word 1) and the slot array (words 2..). An enqueue CAS2-es the
// pair (slot[tail mod n], Tail): if the slot is still null and Tail still
// holds the observed count, the value lands and Tail advances in one
// indivisible step. Dequeue is symmetric on (slot[head mod n], Head).
// Updating index and slot together removes every ABA class of §3 by
// construction — and removes all the algorithmic content with it, which
// is the didactic point. Since the CAS2 specification is serialized
// behind a mutex (see internal/atomic2), this queue is a *reference
// model*: correct, linearizable, and blocking.
package valois

import (
	"fmt"

	"nbqueue/internal/atomic2"
	"nbqueue/internal/queue"
	"nbqueue/internal/xsync"
)

const (
	headWord = 0
	tailWord = 1
	slotBase = 2
)

// Queue is the Valois CAS2 reference queue. Create with New.
type Queue struct {
	mem  *atomic2.Memory
	mask uint64
	size uint64
	ctrs *xsync.Counters
}

// Option configures a Queue.
type Option func(*Queue)

// WithCounters attaches instrumentation counters.
func WithCounters(c *xsync.Counters) Option { return func(q *Queue) { q.ctrs = c } }

// New returns a queue with the given capacity, rounded up to a power of
// two.
func New(capacity int, opts ...Option) *Queue {
	if capacity <= 0 {
		panic(fmt.Sprintf("valois: capacity %d must be positive", capacity))
	}
	size := uint64(1)
	for size < uint64(capacity) {
		size <<= 1
	}
	q := &Queue{
		mem:  atomic2.New(slotBase + int(size)),
		mask: size - 1,
		size: size,
	}
	for _, o := range opts {
		o(q)
	}
	return q
}

// Capacity returns the slot count.
func (q *Queue) Capacity() int { return int(q.size) }

// Name returns the algorithm's display name.
func (q *Queue) Name() string { return "Valois (CAS2 model)" }

// Session is stateless.
type Session struct {
	q   *Queue
	ctr xsync.Handle
}

var _ queue.Session = (*Session)(nil)

// Attach returns a session for the calling goroutine.
func (q *Queue) Attach() queue.Session {
	return &Session{q: q, ctr: q.ctrs.Handle()}
}

// Detach releases the session (a no-op for this algorithm).
func (s *Session) Detach() {}

// Enqueue inserts v with a single CAS2 over (slot, Tail).
func (s *Session) Enqueue(v uint64) error {
	if err := queue.CheckValue(v); err != nil {
		return err
	}
	q := s.q
	for {
		slotIdx := func(t uint64) int { return slotBase + int(t&q.mask) }
		t, h := q.mem.Load(tailWord), q.mem.Load(headWord)
		if t == h+q.size {
			return queue.ErrFull
		}
		cur, tNow := q.mem.Snapshot2(slotIdx(t), tailWord)
		if tNow != t {
			continue
		}
		if cur != 0 {
			// A laggard's item without an advanced Tail cannot exist
			// here — CAS2 moves both together — so a non-null slot at
			// Tail means our Tail read is stale; retry.
			continue
		}
		s.ctr.Inc(xsync.OpCASAttempt)
		if q.mem.CAS2(slotIdx(t), tailWord, 0, t, v, t+1) {
			s.ctr.Inc(xsync.OpCASSuccess)
			s.ctr.Inc(xsync.OpEnqueue)
			return nil
		}
	}
}

// Dequeue removes the head value with a single CAS2 over (slot, Head).
func (s *Session) Dequeue() (uint64, bool) {
	q := s.q
	for {
		slotIdx := func(h uint64) int { return slotBase + int(h&q.mask) }
		h, t := q.mem.Load(headWord), q.mem.Load(tailWord)
		if h == t {
			return 0, false
		}
		v, hNow := q.mem.Snapshot2(slotIdx(h), headWord)
		if hNow != h || v == 0 {
			continue
		}
		s.ctr.Inc(xsync.OpCASAttempt)
		if q.mem.CAS2(slotIdx(h), headWord, v, h, 0, h+1) {
			s.ctr.Inc(xsync.OpCASSuccess)
			s.ctr.Inc(xsync.OpDequeue)
			return v, true
		}
	}
}

// Len reports the current number of queued items.
func (q *Queue) Len() int {
	h, t := q.mem.Snapshot2(headWord, tailWord)
	return int(t - h)
}
