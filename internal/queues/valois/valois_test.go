package valois_test

import (
	"testing"

	"nbqueue/internal/queue"
	"nbqueue/internal/queues/valois"
	"nbqueue/internal/queuetest"
	"nbqueue/internal/xsync"
)

func maker(capacity int) queue.Queue { return valois.New(capacity) }

func TestConformance(t *testing.T) {
	queuetest.RunAll(t, maker)
}

// TestSingleCAS2PerOp: the defining property — one successful
// two-location CAS per operation, nothing else.
func TestSingleCAS2PerOp(t *testing.T) {
	ctrs := xsync.NewCounters()
	q := valois.New(64, valois.WithCounters(ctrs))
	s := q.Attach()
	defer s.Detach()
	const ops = 1000
	for i := 0; i < ops; i++ {
		if err := s.Enqueue(uint64(i+1) << 1); err != nil {
			t.Fatal(err)
		}
		if _, ok := s.Dequeue(); !ok {
			t.Fatal("empty")
		}
	}
	if got := ctrs.PerOp(xsync.OpCASSuccess); got != 1 {
		t.Errorf("successful CAS2 per op = %.2f, want exactly 1", got)
	}
}

// TestIndexSlotAtomicity: because index and slot move together, Len and
// slot occupancy can never disagree at quiescence, even after heavy
// wrapping.
func TestIndexSlotAtomicity(t *testing.T) {
	q := valois.New(4)
	s := q.Attach()
	defer s.Detach()
	for i := 0; i < 10000; i++ {
		v := uint64(i+1) << 1
		if err := s.Enqueue(v); err != nil {
			t.Fatal(err)
		}
		if q.Len() != 1 {
			t.Fatalf("len after enqueue = %d", q.Len())
		}
		got, ok := s.Dequeue()
		if !ok || got != v {
			t.Fatalf("dequeue = %#x,%v", got, ok)
		}
		if q.Len() != 0 {
			t.Fatalf("len after dequeue = %d", q.Len())
		}
	}
}
