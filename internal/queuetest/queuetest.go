// Package queuetest is the shared conformance suite run against every
// queue algorithm in the module. Each algorithm package's tests invoke
// these helpers with its own constructor, so all implementations face the
// same sequential-semantics, boundary, concurrency and linearizability
// checks, and algorithm-specific tests stay focused on what is unique to
// that algorithm.
package queuetest

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"nbqueue/internal/lincheck"
	"nbqueue/internal/queue"
	"nbqueue/internal/xsync"
)

// Maker builds a fresh queue with at least the given capacity.
type Maker func(capacity int) queue.Queue

// val maps a small integer to a legal queue value (even, nonzero).
func val(i int) uint64 { return uint64(i+1) << 1 }

// SequentialFIFO drives a single session through interleaved patterns and
// checks exact FIFO semantics against a model slice.
func SequentialFIFO(t *testing.T, mk Maker) {
	t.Helper()
	q := mk(256)
	s := q.Attach()
	defer s.Detach()
	var model []uint64
	push := func(i int) {
		t.Helper()
		v := val(i)
		if err := s.Enqueue(v); err != nil {
			t.Fatalf("enqueue %d: %v", i, err)
		}
		model = append(model, v)
	}
	pop := func() {
		t.Helper()
		v, ok := s.Dequeue()
		if len(model) == 0 {
			if ok {
				t.Fatalf("dequeue returned %#x from empty queue", v)
			}
			return
		}
		if !ok {
			t.Fatalf("dequeue reported empty, want %#x", model[0])
		}
		if v != model[0] {
			t.Fatalf("dequeue = %#x, want %#x (FIFO violation)", v, model[0])
		}
		model = model[1:]
	}
	// Simple in-order.
	for i := 0; i < 10; i++ {
		push(i)
	}
	for i := 0; i < 10; i++ {
		pop()
	}
	pop() // empty
	// Interleaved with wrap-around well beyond capacity.
	n := 0
	for round := 0; round < 40; round++ {
		for k := 0; k <= round%5; k++ {
			push(n)
			n++
		}
		for k := 0; k < round%3; k++ {
			pop()
		}
	}
	for len(model) > 0 {
		pop()
	}
	if v, ok := s.Dequeue(); ok {
		t.Fatalf("queue should be empty, got %#x", v)
	}
}

// FullEmpty verifies boundary behaviour of a bounded queue: fill to
// capacity, observe ErrFull, drain, observe empty, refill. When soft is
// true the queue's Capacity is treated as a lower bound only (link-based
// queues bound by their node arena, which includes reclamation headroom).
func FullEmpty(t *testing.T, mk Maker, soft bool) {
	t.Helper()
	const capReq = 8
	q := mk(capReq)
	capacity := q.Capacity()
	if capacity <= 0 {
		t.Skip("unbounded queue")
	}
	guard := capacity
	if soft {
		guard = 1 << 22
	}
	s := q.Attach()
	defer s.Detach()
	for cycle := 0; cycle < 3; cycle++ {
		i := 0
		for ; ; i++ {
			if err := s.Enqueue(val(cycle*1000000 + i)); err != nil {
				if err != queue.ErrFull {
					t.Fatalf("enqueue: %v", err)
				}
				break
			}
			if i > guard {
				t.Fatalf("enqueued %d items into capacity-%d queue without ErrFull", i+1, capacity)
			}
		}
		if i < capReq {
			t.Fatalf("queue full after %d items, requested capacity %d", i, capReq)
		}
		for k := 0; k < i; k++ {
			v, ok := s.Dequeue()
			if !ok {
				t.Fatalf("dequeue %d/%d reported empty", k, i)
			}
			if want := val(cycle*1000000 + k); v != want {
				t.Fatalf("dequeue %d = %#x, want %#x", k, v, want)
			}
		}
		if _, ok := s.Dequeue(); ok {
			t.Fatal("queue should be empty after drain")
		}
	}
}

// ValueValidation checks the word-contract errors.
func ValueValidation(t *testing.T, mk Maker) {
	t.Helper()
	q := mk(8)
	s := q.Attach()
	defer s.Detach()
	for _, bad := range []uint64{0, 1, 3, 7, queue.MaxValue + 2} {
		if err := s.Enqueue(bad); err != queue.ErrValue {
			t.Errorf("Enqueue(%#x) = %v, want ErrValue", bad, err)
		}
	}
	if err := s.Enqueue(2); err != nil {
		t.Errorf("Enqueue(2) = %v, want nil", err)
	}
}

// StressMPMC hammers the queue with producers and consumers exchanging
// unique values, then verifies conservation: every value produced is
// consumed exactly once and nothing else appears.
func StressMPMC(t *testing.T, mk Maker, producers, consumers, perProducer int) {
	t.Helper()
	q := mk(256)
	total := producers * perProducer
	seen := make([]atomic.Int32, total)
	var wg sync.WaitGroup
	start := xsync.NewBarrier(producers + consumers)
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			s := q.Attach()
			defer s.Detach()
			start.Wait()
			for i := 0; i < perProducer; i++ {
				v := val(p*perProducer + i)
				for s.Enqueue(v) != nil {
					runtime.Gosched()
				}
			}
		}(p)
	}
	var mu sync.Mutex
	var errs []string
	got := make(chan struct{}, total)
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := q.Attach()
			defer s.Detach()
			start.Wait()
			for {
				select {
				case got <- struct{}{}:
				default:
					return // all values claimed
				}
				v, ok := s.Dequeue()
				for !ok {
					runtime.Gosched()
					v, ok = s.Dequeue()
				}
				idx := int(v>>1) - 1
				if idx < 0 || idx >= total {
					mu.Lock()
					errs = append(errs, fmt.Sprintf("alien value %#x", v))
					mu.Unlock()
					continue
				}
				seen[idx].Add(1)
			}
		}()
	}
	wg.Wait()
	for _, e := range errs {
		t.Error(e)
	}
	for i := range seen {
		if n := seen[i].Load(); n != 1 {
			t.Fatalf("value %d consumed %d times, want exactly once", i, n)
		}
	}
	// Queue must be empty now.
	s := q.Attach()
	defer s.Detach()
	if v, ok := s.Dequeue(); ok {
		t.Fatalf("leftover value %#x after balanced stress", v)
	}
}

// Linearizable records a concurrent history with mixed operations per
// thread and validates it with the fast checker; small sub-histories are
// additionally checked exhaustively by the lincheck package's own tests.
func Linearizable(t *testing.T, mk Maker, threads, opsPerThread int) {
	t.Helper()
	q := mk(threads * opsPerThread)
	rec := lincheck.NewRecorder(threads, opsPerThread)
	var wg sync.WaitGroup
	start := xsync.NewBarrier(threads)
	for th := 0; th < threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			s := q.Attach()
			defer s.Detach()
			log := rec.Log(th)
			start.Wait()
			for i := 0; i < opsPerThread; i++ {
				if (th+i)%2 == 0 {
					v := val(th*opsPerThread + i)
					inv := log.Begin()
					err := s.Enqueue(v)
					log.Enq(inv, v, err == nil)
				} else {
					inv := log.Begin()
					v, ok := s.Dequeue()
					log.Deq(inv, v, ok)
				}
			}
		}(th)
	}
	wg.Wait()
	if err := lincheck.CheckFast(rec.History()); err != nil {
		t.Fatal(err)
	}
}

// DetachReattach cycles sessions to exercise registration recycling
// (LLSCvar records, hazard records) across many attach/detach rounds,
// interleaved with queue traffic.
func DetachReattach(t *testing.T, mk Maker) {
	t.Helper()
	q := mk(32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < 50; round++ {
				s := q.Attach()
				v := val(g*1000 + round)
				for s.Enqueue(v) != nil {
					runtime.Gosched()
				}
				if _, ok := s.Dequeue(); !ok {
					// Another goroutine may have taken it; that's fine —
					// balance is restored because we enqueued first, so
					// retry until something arrives or give the value up
					// for a peer.
					for i := 0; i < 100; i++ {
						runtime.Gosched()
						if _, ok = s.Dequeue(); ok {
							break
						}
					}
				}
				s.Detach()
			}
		}(g)
	}
	wg.Wait()
}

// ModelSequential is a property test: random single-threaded operation
// sequences must behave identically to a slice model — every dequeue
// yields exactly the model's front element, emptiness agrees, and a
// drain at the end returns the full remaining model.
func ModelSequential(t *testing.T, mk Maker) {
	t.Helper()
	f := func(ops []byte) bool {
		q := mk(64)
		s := q.Attach()
		defer s.Detach()
		var model []uint64
		next := 1
		for _, op := range ops {
			if op%2 == 0 {
				v := val(next)
				next++
				err := s.Enqueue(v)
				if err == nil {
					model = append(model, v)
				} else if err != queue.ErrFull {
					return false
				}
				// ErrFull against a non-full model is legal only for
				// soft-capacity queues; accept it but keep the model in
				// sync by not recording the value.
			} else {
				v, ok := s.Dequeue()
				if len(model) == 0 {
					if ok {
						return false
					}
					continue
				}
				if !ok || v != model[0] {
					return false
				}
				model = model[1:]
			}
		}
		for _, want := range model {
			v, ok := s.Dequeue()
			if !ok || v != want {
				return false
			}
		}
		_, ok := s.Dequeue()
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// UnboundedNoErrFull floods an unbounded queue from concurrent
// producers with no consumer draining it, far enough to straddle at
// least three segments of a segmented implementation, and requires
// that no enqueue ever sheds with ErrFull. It then drains on a single
// session and verifies conservation plus per-producer FIFO order (the
// order each producer's values must keep across segment boundaries).
func UnboundedNoErrFull(t *testing.T, mk Maker, segSize int) {
	t.Helper()
	q := mk(64)
	if q.Capacity() != 0 {
		t.Fatalf("unbounded conformance needs Capacity() == 0, got %d", q.Capacity())
	}
	if segSize <= 0 {
		segSize = 256
	}
	const producers = 4
	// Enough that the backlog alone spans > 3 segments even if one
	// segment were to absorb rounding slack.
	perProducer := (3*segSize)/producers + segSize
	total := producers * perProducer
	var wg sync.WaitGroup
	start := xsync.NewBarrier(producers)
	var shed atomic.Int64
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			s := q.Attach()
			defer s.Detach()
			start.Wait()
			for i := 0; i < perProducer; i++ {
				if err := s.Enqueue(val(p*perProducer + i)); err != nil {
					shed.Add(1)
					t.Errorf("producer %d enqueue %d: %v (unbounded queue must never shed)", p, i, err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	if shed.Load() > 0 {
		return
	}
	s := q.Attach()
	defer s.Detach()
	lastSeen := make([]int, producers)
	for p := range lastSeen {
		lastSeen[p] = -1
	}
	for k := 0; k < total; k++ {
		v, ok := s.Dequeue()
		if !ok {
			t.Fatalf("drain %d/%d reported empty", k, total)
		}
		idx := int(v>>1) - 1
		if idx < 0 || idx >= total {
			t.Fatalf("alien value %#x", v)
		}
		p, i := idx/perProducer, idx%perProducer
		if i <= lastSeen[p] {
			t.Fatalf("producer %d order violation: got seq %d after %d", p, i, lastSeen[p])
		}
		lastSeen[p] = i
	}
	if v, ok := s.Dequeue(); ok {
		t.Fatalf("leftover value %#x after full drain", v)
	}
	for p, last := range lastSeen {
		if last != perProducer-1 {
			t.Fatalf("producer %d: last value seen %d, want %d", p, last, perProducer-1)
		}
	}
}

// SegmentStraddleFIFO enqueues sequentially well past three segment
// boundaries and requires exact global FIFO order back out — the
// cross-segment ordering guarantee of a segmented queue.
func SegmentStraddleFIFO(t *testing.T, mk Maker, segSize int) {
	t.Helper()
	if segSize <= 0 {
		segSize = 256
	}
	q := mk(64)
	s := q.Attach()
	defer s.Detach()
	n := 3*segSize + segSize/2 + 3
	for i := 0; i < n; i++ {
		if err := s.Enqueue(val(i)); err != nil {
			t.Fatalf("enqueue %d: %v", i, err)
		}
	}
	for i := 0; i < n; i++ {
		v, ok := s.Dequeue()
		if !ok {
			t.Fatalf("dequeue %d/%d reported empty", i, n)
		}
		if v != val(i) {
			t.Fatalf("dequeue %d = %#x, want %#x (FIFO violation across segments)", i, v, val(i))
		}
	}
	if v, ok := s.Dequeue(); ok {
		t.Fatalf("leftover value %#x", v)
	}
}

// Opts tunes the conformance suite per algorithm.
type Opts struct {
	// SoftCapacity marks queues whose Capacity is a lower bound rather
	// than exact (link-based queues bounded by their node arena).
	SoftCapacity bool
	// Unbounded enables the unbounded-conformance subtests: the queue
	// must report Capacity() == 0 and never return ErrFull. Bounded
	// boundary tests (FullEmpty) skip themselves on such queues.
	Unbounded bool
	// SegSize hints the segment size of a segmented queue so the
	// unbounded tests can force enqueues straddling several segments.
	// 0 assumes 256.
	SegSize int
}

// RunAll executes the full conformance suite as subtests.
func RunAll(t *testing.T, mk Maker) { RunAllWith(t, mk, Opts{}) }

// RunAllWith executes the suite with per-algorithm options.
func RunAllWith(t *testing.T, mk Maker, o Opts) {
	t.Run("SequentialFIFO", func(t *testing.T) { SequentialFIFO(t, mk) })
	t.Run("FullEmpty", func(t *testing.T) { FullEmpty(t, mk, o.SoftCapacity) })
	t.Run("ValueValidation", func(t *testing.T) { ValueValidation(t, mk) })
	t.Run("StressMPMC", func(t *testing.T) {
		if testing.Short() {
			StressMPMC(t, mk, 2, 2, 500)
			return
		}
		StressMPMC(t, mk, 4, 4, 2000)
	})
	t.Run("StressUnbalanced", func(t *testing.T) { StressMPMC(t, mk, 3, 5, 1000) })
	t.Run("Linearizable", func(t *testing.T) { Linearizable(t, mk, 4, 300) })
	t.Run("ModelSequential", func(t *testing.T) { ModelSequential(t, mk) })
	t.Run("DetachReattach", func(t *testing.T) { DetachReattach(t, mk) })
	if o.Unbounded {
		t.Run("UnboundedNoErrFull", func(t *testing.T) { UnboundedNoErrFull(t, mk, o.SegSize) })
		t.Run("SegmentStraddleFIFO", func(t *testing.T) { SegmentStraddleFIFO(t, mk, o.SegSize) })
	}
}
