// Package queuetest is the shared conformance suite run against every
// queue algorithm in the module. Each algorithm package's tests invoke
// these helpers with its own constructor, so all implementations face the
// same sequential-semantics, boundary, concurrency and linearizability
// checks, and algorithm-specific tests stay focused on what is unique to
// that algorithm.
package queuetest

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"nbqueue/internal/lincheck"
	"nbqueue/internal/queue"
	"nbqueue/internal/xsync"
)

// Maker builds a fresh queue with at least the given capacity.
type Maker func(capacity int) queue.Queue

// val maps a small integer to a legal queue value (even, nonzero).
func val(i int) uint64 { return uint64(i+1) << 1 }

// SequentialFIFO drives a single session through interleaved patterns and
// checks exact FIFO semantics against a model slice.
func SequentialFIFO(t *testing.T, mk Maker) {
	t.Helper()
	q := mk(256)
	s := q.Attach()
	defer s.Detach()
	var model []uint64
	push := func(i int) {
		t.Helper()
		v := val(i)
		if err := s.Enqueue(v); err != nil {
			t.Fatalf("enqueue %d: %v", i, err)
		}
		model = append(model, v)
	}
	pop := func() {
		t.Helper()
		v, ok := s.Dequeue()
		if len(model) == 0 {
			if ok {
				t.Fatalf("dequeue returned %#x from empty queue", v)
			}
			return
		}
		if !ok {
			t.Fatalf("dequeue reported empty, want %#x", model[0])
		}
		if v != model[0] {
			t.Fatalf("dequeue = %#x, want %#x (FIFO violation)", v, model[0])
		}
		model = model[1:]
	}
	// Simple in-order.
	for i := 0; i < 10; i++ {
		push(i)
	}
	for i := 0; i < 10; i++ {
		pop()
	}
	pop() // empty
	// Interleaved with wrap-around well beyond capacity.
	n := 0
	for round := 0; round < 40; round++ {
		for k := 0; k <= round%5; k++ {
			push(n)
			n++
		}
		for k := 0; k < round%3; k++ {
			pop()
		}
	}
	for len(model) > 0 {
		pop()
	}
	if v, ok := s.Dequeue(); ok {
		t.Fatalf("queue should be empty, got %#x", v)
	}
}

// FullEmpty verifies boundary behaviour of a bounded queue: fill to
// capacity, observe ErrFull, drain, observe empty, refill. When soft is
// true the queue's Capacity is treated as a lower bound only (link-based
// queues bound by their node arena, which includes reclamation headroom).
func FullEmpty(t *testing.T, mk Maker, soft bool) {
	t.Helper()
	const capReq = 8
	q := mk(capReq)
	capacity := q.Capacity()
	if capacity <= 0 {
		t.Skip("unbounded queue")
	}
	guard := capacity
	if soft {
		guard = 1 << 22
	}
	s := q.Attach()
	defer s.Detach()
	for cycle := 0; cycle < 3; cycle++ {
		i := 0
		for ; ; i++ {
			if err := s.Enqueue(val(cycle*1000000 + i)); err != nil {
				if err != queue.ErrFull {
					t.Fatalf("enqueue: %v", err)
				}
				break
			}
			if i > guard {
				t.Fatalf("enqueued %d items into capacity-%d queue without ErrFull", i+1, capacity)
			}
		}
		if i < capReq {
			t.Fatalf("queue full after %d items, requested capacity %d", i, capReq)
		}
		for k := 0; k < i; k++ {
			v, ok := s.Dequeue()
			if !ok {
				t.Fatalf("dequeue %d/%d reported empty", k, i)
			}
			if want := val(cycle*1000000 + k); v != want {
				t.Fatalf("dequeue %d = %#x, want %#x", k, v, want)
			}
		}
		if _, ok := s.Dequeue(); ok {
			t.Fatal("queue should be empty after drain")
		}
	}
}

// ValueValidation checks the word-contract errors.
func ValueValidation(t *testing.T, mk Maker) {
	t.Helper()
	q := mk(8)
	s := q.Attach()
	defer s.Detach()
	for _, bad := range []uint64{0, 1, 3, 7, queue.MaxValue + 2} {
		if err := s.Enqueue(bad); err != queue.ErrValue {
			t.Errorf("Enqueue(%#x) = %v, want ErrValue", bad, err)
		}
	}
	if err := s.Enqueue(2); err != nil {
		t.Errorf("Enqueue(2) = %v, want nil", err)
	}
}

// StressMPMC hammers the queue with producers and consumers exchanging
// unique values, then verifies conservation: every value produced is
// consumed exactly once and nothing else appears.
func StressMPMC(t *testing.T, mk Maker, producers, consumers, perProducer int) {
	t.Helper()
	q := mk(256)
	total := producers * perProducer
	seen := make([]atomic.Int32, total)
	var wg sync.WaitGroup
	start := xsync.NewBarrier(producers + consumers)
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			s := q.Attach()
			defer s.Detach()
			start.Wait()
			for i := 0; i < perProducer; i++ {
				v := val(p*perProducer + i)
				for s.Enqueue(v) != nil {
					runtime.Gosched()
				}
			}
		}(p)
	}
	var mu sync.Mutex
	var errs []string
	got := make(chan struct{}, total)
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := q.Attach()
			defer s.Detach()
			start.Wait()
			for {
				select {
				case got <- struct{}{}:
				default:
					return // all values claimed
				}
				v, ok := s.Dequeue()
				for !ok {
					runtime.Gosched()
					v, ok = s.Dequeue()
				}
				idx := int(v>>1) - 1
				if idx < 0 || idx >= total {
					mu.Lock()
					errs = append(errs, fmt.Sprintf("alien value %#x", v))
					mu.Unlock()
					continue
				}
				seen[idx].Add(1)
			}
		}()
	}
	wg.Wait()
	for _, e := range errs {
		t.Error(e)
	}
	for i := range seen {
		if n := seen[i].Load(); n != 1 {
			t.Fatalf("value %d consumed %d times, want exactly once", i, n)
		}
	}
	// Queue must be empty now.
	s := q.Attach()
	defer s.Detach()
	if v, ok := s.Dequeue(); ok {
		t.Fatalf("leftover value %#x after balanced stress", v)
	}
}

// Linearizable records a concurrent history with mixed operations per
// thread and validates it with the fast checker; small sub-histories are
// additionally checked exhaustively by the lincheck package's own tests.
func Linearizable(t *testing.T, mk Maker, threads, opsPerThread int) {
	t.Helper()
	q := mk(threads * opsPerThread)
	rec := lincheck.NewRecorder(threads, opsPerThread)
	var wg sync.WaitGroup
	start := xsync.NewBarrier(threads)
	for th := 0; th < threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			s := q.Attach()
			defer s.Detach()
			log := rec.Log(th)
			start.Wait()
			for i := 0; i < opsPerThread; i++ {
				if (th+i)%2 == 0 {
					v := val(th*opsPerThread + i)
					inv := log.Begin()
					err := s.Enqueue(v)
					log.Enq(inv, v, err == nil)
				} else {
					inv := log.Begin()
					v, ok := s.Dequeue()
					log.Deq(inv, v, ok)
				}
			}
		}(th)
	}
	wg.Wait()
	if err := lincheck.CheckFast(rec.History()); err != nil {
		t.Fatal(err)
	}
}

// DetachReattach cycles sessions to exercise registration recycling
// (LLSCvar records, hazard records) across many attach/detach rounds,
// interleaved with queue traffic.
func DetachReattach(t *testing.T, mk Maker) {
	t.Helper()
	q := mk(32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < 50; round++ {
				s := q.Attach()
				v := val(g*1000 + round)
				for s.Enqueue(v) != nil {
					runtime.Gosched()
				}
				if _, ok := s.Dequeue(); !ok {
					// Another goroutine may have taken it; that's fine —
					// balance is restored because we enqueued first, so
					// retry until something arrives or give the value up
					// for a peer.
					for i := 0; i < 100; i++ {
						runtime.Gosched()
						if _, ok = s.Dequeue(); ok {
							break
						}
					}
				}
				s.Detach()
			}
		}(g)
	}
	wg.Wait()
}

// ModelSequential is a property test: random single-threaded operation
// sequences must behave identically to a slice model — every dequeue
// yields exactly the model's front element, emptiness agrees, and a
// drain at the end returns the full remaining model.
func ModelSequential(t *testing.T, mk Maker) {
	t.Helper()
	f := func(ops []byte) bool {
		q := mk(64)
		s := q.Attach()
		defer s.Detach()
		var model []uint64
		next := 1
		for _, op := range ops {
			if op%2 == 0 {
				v := val(next)
				next++
				err := s.Enqueue(v)
				if err == nil {
					model = append(model, v)
				} else if err != queue.ErrFull {
					return false
				}
				// ErrFull against a non-full model is legal only for
				// soft-capacity queues; accept it but keep the model in
				// sync by not recording the value.
			} else {
				v, ok := s.Dequeue()
				if len(model) == 0 {
					if ok {
						return false
					}
					continue
				}
				if !ok || v != model[0] {
					return false
				}
				model = model[1:]
			}
		}
		for _, want := range model {
			v, ok := s.Dequeue()
			if !ok || v != want {
				return false
			}
		}
		_, ok := s.Dequeue()
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// UnboundedNoErrFull floods an unbounded queue from concurrent
// producers with no consumer draining it, far enough to straddle at
// least three segments of a segmented implementation, and requires
// that no enqueue ever sheds with ErrFull. It then drains on a single
// session and verifies conservation plus per-producer FIFO order (the
// order each producer's values must keep across segment boundaries).
func UnboundedNoErrFull(t *testing.T, mk Maker, segSize int) {
	t.Helper()
	q := mk(64)
	if q.Capacity() != 0 {
		t.Fatalf("unbounded conformance needs Capacity() == 0, got %d", q.Capacity())
	}
	if segSize <= 0 {
		segSize = 256
	}
	const producers = 4
	// Enough that the backlog alone spans > 3 segments even if one
	// segment were to absorb rounding slack.
	perProducer := (3*segSize)/producers + segSize
	total := producers * perProducer
	var wg sync.WaitGroup
	start := xsync.NewBarrier(producers)
	var shed atomic.Int64
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			s := q.Attach()
			defer s.Detach()
			start.Wait()
			for i := 0; i < perProducer; i++ {
				if err := s.Enqueue(val(p*perProducer + i)); err != nil {
					shed.Add(1)
					t.Errorf("producer %d enqueue %d: %v (unbounded queue must never shed)", p, i, err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	if shed.Load() > 0 {
		return
	}
	s := q.Attach()
	defer s.Detach()
	lastSeen := make([]int, producers)
	for p := range lastSeen {
		lastSeen[p] = -1
	}
	for k := 0; k < total; k++ {
		v, ok := s.Dequeue()
		if !ok {
			t.Fatalf("drain %d/%d reported empty", k, total)
		}
		idx := int(v>>1) - 1
		if idx < 0 || idx >= total {
			t.Fatalf("alien value %#x", v)
		}
		p, i := idx/perProducer, idx%perProducer
		if i <= lastSeen[p] {
			t.Fatalf("producer %d order violation: got seq %d after %d", p, i, lastSeen[p])
		}
		lastSeen[p] = i
	}
	if v, ok := s.Dequeue(); ok {
		t.Fatalf("leftover value %#x after full drain", v)
	}
	for p, last := range lastSeen {
		if last != perProducer-1 {
			t.Fatalf("producer %d: last value seen %d, want %d", p, last, perProducer-1)
		}
	}
}

// SegmentStraddleFIFO enqueues sequentially well past three segment
// boundaries and requires exact global FIFO order back out — the
// cross-segment ordering guarantee of a segmented queue.
func SegmentStraddleFIFO(t *testing.T, mk Maker, segSize int) {
	t.Helper()
	if segSize <= 0 {
		segSize = 256
	}
	q := mk(64)
	s := q.Attach()
	defer s.Detach()
	n := 3*segSize + segSize/2 + 3
	for i := 0; i < n; i++ {
		if err := s.Enqueue(val(i)); err != nil {
			t.Fatalf("enqueue %d: %v", i, err)
		}
	}
	for i := 0; i < n; i++ {
		v, ok := s.Dequeue()
		if !ok {
			t.Fatalf("dequeue %d/%d reported empty", i, n)
		}
		if v != val(i) {
			t.Fatalf("dequeue %d = %#x, want %#x (FIFO violation across segments)", i, v, val(i))
		}
	}
	if v, ok := s.Dequeue(); ok {
		t.Fatalf("leftover value %#x", v)
	}
}

// BatchSequential drives the batch entry points through a single session
// against a slice model: slice order is FIFO order, empty batches are
// no-ops, a bad element rejects the whole batch with no effect, and a
// batch larger than the remaining room sheds exactly the suffix with
// ErrFull. Runs through the queue.EnqueueBatch/DequeueBatch package
// functions so queues without a native batch operation exercise the
// fallback loop.
func BatchSequential(t *testing.T, mk Maker, soft bool) {
	t.Helper()
	q := mk(16)
	s := q.Attach()
	defer s.Detach()

	if n, err := queue.EnqueueBatch(s, nil); n != 0 || err != nil {
		t.Fatalf("EnqueueBatch(nil) = (%d, %v), want (0, nil)", n, err)
	}
	if n, err := queue.DequeueBatch(s, nil); n != 0 || err != nil {
		t.Fatalf("DequeueBatch(nil) = (%d, %v), want (0, nil)", n, err)
	}

	// Batch in, singles out: slice order is FIFO order.
	vs := make([]uint64, 10)
	for i := range vs {
		vs[i] = val(i)
	}
	if n, err := queue.EnqueueBatch(s, vs); n != 10 || err != nil {
		t.Fatalf("EnqueueBatch = (%d, %v), want (10, nil)", n, err)
	}
	for i := 0; i < 10; i++ {
		v, ok := s.Dequeue()
		if !ok || v != val(i) {
			t.Fatalf("dequeue %d = (%#x, %v), want (%#x, true)", i, v, ok, val(i))
		}
	}

	// Singles in, batch out; an oversized dst yields a partial fill with
	// a nil error (empty is not an error for DequeueBatch).
	for i := 10; i < 16; i++ {
		if err := s.Enqueue(val(i)); err != nil {
			t.Fatalf("enqueue %d: %v", i, err)
		}
	}
	dst := make([]uint64, 32)
	n, err := queue.DequeueBatch(s, dst)
	if n != 6 || err != nil {
		t.Fatalf("DequeueBatch(oversized) = (%d, %v), want (6, nil)", n, err)
	}
	for i := 0; i < 6; i++ {
		if dst[i] != val(10+i) {
			t.Fatalf("dst[%d] = %#x, want %#x", i, dst[i], val(10+i))
		}
	}

	// A bad element anywhere rejects the whole batch with no effect.
	if n, err := queue.EnqueueBatch(s, []uint64{val(100), 3, val(101)}); n != 0 || err != queue.ErrValue {
		t.Fatalf("EnqueueBatch(bad middle) = (%d, %v), want (0, ErrValue)", n, err)
	}
	if v, ok := s.Dequeue(); ok {
		t.Fatalf("ErrValue batch must have no effect, dequeued %#x", v)
	}

	// Full boundary: a batch larger than the room left enqueues exactly a
	// capacity-sized prefix and sheds the rest with ErrFull.
	if capacity := q.Capacity(); capacity > 0 && !soft {
		big := make([]uint64, capacity+4)
		for i := range big {
			big[i] = val(200 + i)
		}
		n, err := queue.EnqueueBatch(s, big)
		if err != queue.ErrFull {
			t.Fatalf("EnqueueBatch over capacity: err = %v, want ErrFull", err)
		}
		if n != capacity {
			t.Fatalf("EnqueueBatch over capacity: n = %d, want %d", n, capacity)
		}
		out := make([]uint64, capacity)
		if m, err := queue.DequeueBatch(s, out); m != capacity || err != nil {
			t.Fatalf("drain after full batch = (%d, %v), want (%d, nil)", m, err, capacity)
		}
		for i := range out {
			if out[i] != val(200+i) {
				t.Fatalf("drain[%d] = %#x, want %#x (prefix order)", i, out[i], val(200+i))
			}
		}
	}

	// Mixed batch sizes interleaved against the model, crossing
	// wrap-around well beyond capacity.
	var model []uint64
	next := 1000
	for round := 0; round < 40; round++ {
		in := make([]uint64, round%4+1)
		for i := range in {
			in[i] = val(next)
			next++
		}
		n, err := queue.EnqueueBatch(s, in)
		if err != nil && err != queue.ErrFull {
			t.Fatalf("round %d enqueue: %v", round, err)
		}
		model = append(model, in[:n]...)
		out := make([]uint64, round%3+1)
		m, err := queue.DequeueBatch(s, out)
		if err != nil {
			t.Fatalf("round %d dequeue: %v", round, err)
		}
		if m > len(model) {
			t.Fatalf("round %d: dequeued %d with only %d queued", round, m, len(model))
		}
		for i := 0; i < m; i++ {
			if out[i] != model[i] {
				t.Fatalf("round %d: out[%d] = %#x, want %#x (FIFO violation)", round, i, out[i], model[i])
			}
		}
		model = model[m:]
	}
	for len(model) > 0 {
		step := len(model)
		if step > 7 {
			step = 7
		}
		out := make([]uint64, step)
		m, err := queue.DequeueBatch(s, out)
		if m != step || err != nil {
			t.Fatalf("final drain = (%d, %v), want (%d, nil)", m, err, step)
		}
		for i := 0; i < m; i++ {
			if out[i] != model[i] {
				t.Fatalf("final drain[%d] = %#x, want %#x", i, out[i], model[i])
			}
		}
		model = model[step:]
	}
	if v, ok := s.Dequeue(); ok {
		t.Fatalf("leftover value %#x", v)
	}
}

// BatchMPMC exercises batch operations under contention in two phases.
// Phase one: concurrent producers push mixed-size batches, then a single
// session drains with batch dequeues and verifies conservation plus
// per-producer FIFO order (the order a producer's elements must keep
// both inside one batch and across its batches). Phase two: producers
// and batch consumers run concurrently and every value must be consumed
// exactly once.
func BatchMPMC(t *testing.T, mk Maker, producers, perProducer int) {
	t.Helper()
	total := producers * perProducer
	q := mk(total)

	produce := func(p, base int) {
		s := q.Attach()
		defer s.Detach()
		vals := make([]uint64, perProducer)
		for i := range vals {
			vals[i] = val(base + p*perProducer + i)
		}
		sent := 0
		for sent < perProducer {
			size := 1 + (sent+p)%7
			if size > perProducer-sent {
				size = perProducer - sent
			}
			n, err := queue.EnqueueBatch(s, vals[sent:sent+size])
			sent += n
			if err != nil {
				runtime.Gosched()
			}
		}
	}

	// Phase one: produce concurrently, drain sequentially in order.
	var wg sync.WaitGroup
	start := xsync.NewBarrier(producers)
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			start.Wait()
			produce(p, 0)
		}(p)
	}
	wg.Wait()
	s := q.Attach()
	lastSeen := make([]int, producers)
	for p := range lastSeen {
		lastSeen[p] = -1
	}
	dst := make([]uint64, 13)
	for got := 0; got < total; {
		n, err := queue.DequeueBatch(s, dst[:1+got%len(dst)])
		if err != nil {
			runtime.Gosched()
		}
		if n == 0 && err == nil {
			t.Fatalf("queue empty after %d/%d values", got, total)
		}
		for _, v := range dst[:n] {
			idx := int(v>>1) - 1
			if idx < 0 || idx >= total {
				t.Fatalf("alien value %#x", v)
			}
			p, i := idx/perProducer, idx%perProducer
			if i <= lastSeen[p] {
				t.Fatalf("producer %d order violation: got seq %d after %d", p, i, lastSeen[p])
			}
			lastSeen[p] = i
		}
		got += n
	}
	if v, ok := s.Dequeue(); ok {
		t.Fatalf("leftover value %#x after ordered drain", v)
	}
	s.Detach()

	// Phase two: batch producers against batch consumers, conservation.
	const base = 1 << 24 // distinct value space from phase one
	seen := make([]atomic.Int32, total)
	var remaining atomic.Int64
	remaining.Store(int64(total))
	consumers := producers
	start = xsync.NewBarrier(producers + consumers)
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			start.Wait()
			produce(p, base)
		}(p)
	}
	var mu sync.Mutex
	var errs []string
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			s := q.Attach()
			defer s.Detach()
			dst := make([]uint64, 11)
			start.Wait()
			for round := 0; remaining.Load() > 0; round++ {
				n, _ := queue.DequeueBatch(s, dst[:1+(c+round)%len(dst)])
				if n == 0 {
					runtime.Gosched()
					continue
				}
				for _, v := range dst[:n] {
					idx := int(v>>1) - 1 - base
					if idx < 0 || idx >= total {
						mu.Lock()
						errs = append(errs, fmt.Sprintf("alien value %#x", v))
						mu.Unlock()
						continue
					}
					seen[idx].Add(1)
				}
				remaining.Add(-int64(n))
			}
		}(c)
	}
	wg.Wait()
	for _, e := range errs {
		t.Error(e)
	}
	for i := range seen {
		if n := seen[i].Load(); n != 1 {
			t.Fatalf("value %d consumed %d times, want exactly once", i, n)
		}
	}
	s = q.Attach()
	defer s.Detach()
	if v, ok := s.Dequeue(); ok {
		t.Fatalf("leftover value %#x after balanced batch stress", v)
	}
}

// BatchLinearizable records a history mixing batch and single operations
// across threads — every batch element logged as its own operation
// sharing the batch's interval — and validates it with the fast checker.
func BatchLinearizable(t *testing.T, mk Maker, threads, rounds int) {
	t.Helper()
	const maxBatch = 5
	q := mk(threads * rounds * maxBatch)
	rec := lincheck.NewRecorder(threads, rounds*maxBatch)
	var wg sync.WaitGroup
	start := xsync.NewBarrier(threads)
	for th := 0; th < threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			s := q.Attach()
			defer s.Detach()
			log := rec.Log(th)
			next := th * rounds * maxBatch
			buf := make([]uint64, maxBatch)
			start.Wait()
			for i := 0; i < rounds; i++ {
				size := 1 + (th+i)%maxBatch
				switch (th + i) % 4 {
				case 0:
					vs := buf[:size]
					for k := range vs {
						vs[k] = val(next)
						next++
					}
					inv := log.Begin()
					n, _ := queue.EnqueueBatch(s, vs)
					log.EnqBatch(inv, vs, n)
				case 1:
					v := val(next)
					next++
					inv := log.Begin()
					err := s.Enqueue(v)
					log.Enq(inv, v, err == nil)
				case 2:
					dst := buf[:size]
					inv := log.Begin()
					n, _ := queue.DequeueBatch(s, dst)
					log.DeqBatch(inv, dst, n)
				default:
					inv := log.Begin()
					v, ok := s.Dequeue()
					log.Deq(inv, v, ok)
				}
			}
		}(th)
	}
	wg.Wait()
	if err := lincheck.CheckFast(rec.History()); err != nil {
		t.Fatal(err)
	}
}

// Opts tunes the conformance suite per algorithm.
type Opts struct {
	// SoftCapacity marks queues whose Capacity is a lower bound rather
	// than exact (link-based queues bounded by their node arena).
	SoftCapacity bool
	// Unbounded enables the unbounded-conformance subtests: the queue
	// must report Capacity() == 0 and never return ErrFull. Bounded
	// boundary tests (FullEmpty) skip themselves on such queues.
	Unbounded bool
	// SegSize hints the segment size of a segmented queue so the
	// unbounded tests can force enqueues straddling several segments.
	// 0 assumes 256.
	SegSize int
}

// RunAll executes the full conformance suite as subtests.
func RunAll(t *testing.T, mk Maker) { RunAllWith(t, mk, Opts{}) }

// RunAllWith executes the suite with per-algorithm options.
func RunAllWith(t *testing.T, mk Maker, o Opts) {
	t.Run("SequentialFIFO", func(t *testing.T) { SequentialFIFO(t, mk) })
	t.Run("FullEmpty", func(t *testing.T) { FullEmpty(t, mk, o.SoftCapacity) })
	t.Run("ValueValidation", func(t *testing.T) { ValueValidation(t, mk) })
	t.Run("StressMPMC", func(t *testing.T) {
		if testing.Short() {
			StressMPMC(t, mk, 2, 2, 500)
			return
		}
		StressMPMC(t, mk, 4, 4, 2000)
	})
	t.Run("StressUnbalanced", func(t *testing.T) { StressMPMC(t, mk, 3, 5, 1000) })
	t.Run("Linearizable", func(t *testing.T) { Linearizable(t, mk, 4, 300) })
	t.Run("BatchSequential", func(t *testing.T) { BatchSequential(t, mk, o.SoftCapacity) })
	t.Run("BatchMPMC", func(t *testing.T) {
		if testing.Short() {
			BatchMPMC(t, mk, 2, 300)
			return
		}
		BatchMPMC(t, mk, 4, 600)
	})
	t.Run("BatchLinearizable", func(t *testing.T) { BatchLinearizable(t, mk, 4, 150) })
	t.Run("ModelSequential", func(t *testing.T) { ModelSequential(t, mk) })
	t.Run("DetachReattach", func(t *testing.T) { DetachReattach(t, mk) })
	if o.Unbounded {
		t.Run("UnboundedNoErrFull", func(t *testing.T) { UnboundedNoErrFull(t, mk, o.SegSize) })
		t.Run("SegmentStraddleFIFO", func(t *testing.T) { SegmentStraddleFIFO(t, mk, o.SegSize) })
	}
}
