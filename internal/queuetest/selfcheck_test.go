// Tests of the test infrastructure: deliberately broken queue
// implementations must be caught by the conformance checks and the
// linearizability checker. If one of these "bugs" stops being detected,
// the suite has lost teeth.
package queuetest_test

import (
	"testing"

	"nbqueue/internal/lincheck"
	"nbqueue/internal/queue"
	"nbqueue/internal/queues/chanq"
)

// base returns a known-good queue to corrupt.
func base(capacity int) queue.Queue { return chanq.New(capacity) }

// brokenKind selects the fault a brokenQueue injects.
type brokenKind int

const (
	brokenLIFO brokenKind = iota // reverses order (stack semantics)
	brokenDup                    // delivers every value twice
	brokenLoss                   // drops every 5th enqueued value
	brokenLie                    // claims empty while holding items
)

// brokenQueue wraps a real queue with an injected defect. Only suitable
// for single-threaded checker tests.
type brokenQueue struct {
	kind brokenKind
	// stack/state for the specific defects
	stack   []uint64
	pending []uint64
	lastDup uint64
	hasDup  bool
	count   int
	lieFlip bool
}

func (b *brokenQueue) Attach() queue.Session { return b }
func (b *brokenQueue) Capacity() int         { return 0 }
func (b *brokenQueue) Name() string          { return "broken" }
func (b *brokenQueue) Detach()               {}

func (b *brokenQueue) Enqueue(v uint64) error {
	if err := queue.CheckValue(v); err != nil {
		return err
	}
	b.count++
	switch b.kind {
	case brokenLIFO:
		b.stack = append(b.stack, v)
	case brokenLoss:
		if b.count%5 == 0 {
			return nil // swallow it
		}
		b.pending = append(b.pending, v)
	default:
		b.pending = append(b.pending, v)
	}
	return nil
}

func (b *brokenQueue) Dequeue() (uint64, bool) {
	switch b.kind {
	case brokenLIFO:
		if len(b.stack) == 0 {
			return 0, false
		}
		v := b.stack[len(b.stack)-1]
		b.stack = b.stack[:len(b.stack)-1]
		return v, true
	case brokenDup:
		if b.hasDup {
			b.hasDup = false
			return b.lastDup, true
		}
		if len(b.pending) == 0 {
			return 0, false
		}
		v := b.pending[0]
		b.pending = b.pending[1:]
		b.lastDup, b.hasDup = v, true
		return v, true
	case brokenLie:
		b.lieFlip = !b.lieFlip
		if b.lieFlip || len(b.pending) == 0 {
			return 0, false // lie half the time
		}
		v := b.pending[0]
		b.pending = b.pending[1:]
		return v, true
	default:
		if len(b.pending) == 0 {
			return 0, false
		}
		v := b.pending[0]
		b.pending = b.pending[1:]
		return v, true
	}
}

// record runs a deterministic single-threaded workload against q and
// returns the history.
func record(q queue.Queue, ops int) []lincheck.Op {
	rec := lincheck.NewRecorder(1, ops)
	log := rec.Log(0)
	s := q.Attach()
	defer s.Detach()
	for i := 0; i < ops; i++ {
		if i%3 != 2 {
			v := uint64(i+1) << 1
			inv := log.Begin()
			err := s.Enqueue(v)
			log.Enq(inv, v, err == nil)
		} else {
			inv := log.Begin()
			v, ok := s.Dequeue()
			log.Deq(inv, v, ok)
		}
	}
	// Drain to force order violations to the surface.
	for {
		inv := log.Begin()
		v, ok := s.Dequeue()
		log.Deq(inv, v, ok)
		if !ok {
			break
		}
	}
	return rec.History()
}

func TestCheckerCatchesLIFO(t *testing.T) {
	hist := record(&brokenQueue{kind: brokenLIFO}, 12)
	if err := lincheck.CheckFast(hist); err == nil {
		t.Fatal("fast checker accepted LIFO ordering")
	}
}

func TestCheckerCatchesDuplication(t *testing.T) {
	hist := record(&brokenQueue{kind: brokenDup}, 12)
	if err := lincheck.CheckFast(hist); err == nil {
		t.Fatal("fast checker accepted duplicated deliveries")
	}
}

// Value loss is invisible to the linearizability checker (a lost value is
// indistinguishable from one never dequeued), so the conservation check
// of StressMPMC is what catches it; verify that mechanism directly.
func TestConservationCatchesLoss(t *testing.T) {
	q := &brokenQueue{kind: brokenLoss}
	s := q.Attach()
	const n = 20
	for i := 0; i < n; i++ {
		if err := s.Enqueue(uint64(i+1) << 1); err != nil {
			t.Fatal(err)
		}
	}
	got := 0
	for {
		if _, ok := s.Dequeue(); !ok {
			break
		}
		got++
	}
	if got == n {
		t.Fatal("loss injection broken: all values arrived")
	}
	// The suite's conservation logic: every produced value must be
	// consumed exactly once. Here it is violated by construction, which
	// is what StressMPMC would report.
}

func TestExhaustiveCatchesFalseEmpty(t *testing.T) {
	// enq(2); deq->empty; deq->2 sequentially: the lie is visible to the
	// exhaustive checker (the empty dequeue cannot linearize anywhere).
	q := &brokenQueue{kind: brokenLie}
	rec := lincheck.NewRecorder(1, 8)
	log := rec.Log(0)
	s := q.Attach()
	inv := log.Begin()
	err := s.Enqueue(2)
	log.Enq(inv, 2, err == nil)
	inv = log.Begin()
	v, ok := s.Dequeue() // lie: claims empty
	log.Deq(inv, v, ok)
	inv = log.Begin()
	v, ok = s.Dequeue() // truth: returns 2
	log.Deq(inv, v, ok)
	if err := lincheck.CheckExhaustive(rec.History()); err == nil {
		t.Fatal("exhaustive checker accepted an impossible empty result")
	}
}

// TestGoodQueuePassesEverything is the control: the same workloads over a
// correct queue must produce clean histories.
func TestGoodQueuePassesEverything(t *testing.T) {
	hist := record(base(64), 12)
	if err := lincheck.CheckFast(hist); err != nil {
		t.Fatalf("fast checker rejected a correct queue: %v", err)
	}
	if err := lincheck.CheckExhaustive(hist[:min(len(hist), 18)]); err != nil {
		t.Fatalf("exhaustive checker rejected a correct queue: %v", err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
