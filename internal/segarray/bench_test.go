package segarray

import "testing"

// BenchmarkWordHot measures access to already-materialized words — the
// steady-state cost of the Herlihy-Wing queue's array.
func BenchmarkWordHot(b *testing.B) {
	var a Array
	a.Word(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Word(uint64(i) & segMask).Store(uint64(i))
	}
}

// BenchmarkWordSweep walks fresh indices, amortizing segment
// materialization over segSize accesses.
func BenchmarkWordSweep(b *testing.B) {
	var a Array
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Word(uint64(i) % MaxWords).Store(1)
	}
}
