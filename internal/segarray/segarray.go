// Package segarray provides a lock-free, append-only, practically
// unbounded array of atomic words — the "infinite array" substrate that
// the Herlihy & Wing queue construction (the paper's reference [3])
// assumes, realized the way Wing & Gong's practical variant ([16])
// realizes it: storage materializes on demand and already-materialized
// words never move, so a word's address is stable for the array's
// lifetime.
//
// Structure: a fixed spine of segment pointers; segments of 2^segBits
// words are installed by CAS on first touch. Readers pay one dependent
// load (spine -> segment); there is no locking anywhere.
package segarray

import (
	"fmt"
	"sync/atomic"
)

const (
	segBits  = 12
	segSize  = 1 << segBits // words per segment (32 KiB)
	segMask  = segSize - 1
	spineLen = 1 << 16 // max segments
	// MaxWords is the largest addressable index + 1 (2^28 words = 2 GiB
	// of payload — far beyond any benchmark here, and reached only if
	// actually touched).
	MaxWords = spineLen * segSize
)

type segment [segSize]atomic.Uint64

// Array is a lock-free unbounded array of uint64 words, all initially
// zero. The zero value is ready to use.
type Array struct {
	spine [spineLen]atomic.Pointer[segment]
	// hint tracks the highest segment ever installed, letting Grown
	// report memory consumption.
	hint atomic.Uint64
}

// Word returns the address of word i, materializing its segment if
// needed. The returned pointer is valid forever.
func (a *Array) Word(i uint64) *atomic.Uint64 {
	if i >= MaxWords {
		panic(fmt.Sprintf("segarray: index %d exceeds MaxWords", i))
	}
	s := i >> segBits
	seg := a.spine[s].Load()
	if seg == nil {
		// Racing installers are fine: the loser's allocation is
		// dropped and everyone converges on the published segment.
		a.spine[s].CompareAndSwap(nil, new(segment))
		seg = a.spine[s].Load()
		for h := a.hint.Load(); s+1 > h; h = a.hint.Load() {
			if a.hint.CompareAndSwap(h, s+1) {
				break
			}
		}
	}
	return &seg[i&segMask]
}

// Load returns word i (0 if its segment was never materialized, without
// materializing it).
func (a *Array) Load(i uint64) uint64 {
	if i >= MaxWords {
		panic(fmt.Sprintf("segarray: index %d exceeds MaxWords", i))
	}
	seg := a.spine[i>>segBits].Load()
	if seg == nil {
		return 0
	}
	return seg[i&segMask].Load()
}

// Segments returns the number of segments materialized so far.
func (a *Array) Segments() int { return int(a.hint.Load()) }

// Bytes returns the approximate memory consumed by materialized
// segments.
func (a *Array) Bytes() int { return a.Segments() * segSize * 8 }
