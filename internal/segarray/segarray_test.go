package segarray

import (
	"sync"
	"testing"
)

func TestWordStableAndZero(t *testing.T) {
	var a Array
	w := a.Word(5)
	if w.Load() != 0 {
		t.Fatal("fresh word not zero")
	}
	w.Store(42)
	if a.Word(5) != w {
		t.Fatal("word address not stable")
	}
	if a.Load(5) != 42 {
		t.Fatal("load disagrees")
	}
}

func TestLoadWithoutMaterializing(t *testing.T) {
	var a Array
	if a.Load(1<<20) != 0 {
		t.Fatal("unmaterialized load not zero")
	}
	if a.Segments() != 0 {
		t.Fatal("Load materialized a segment")
	}
	a.Word(1 << 20).Store(1)
	if a.Segments() == 0 {
		t.Fatal("Word did not record materialization")
	}
}

func TestCrossSegmentIndependence(t *testing.T) {
	var a Array
	a.Word(0).Store(1)
	a.Word(segSize - 1).Store(2)
	a.Word(segSize).Store(3) // next segment
	if a.Load(0) != 1 || a.Load(segSize-1) != 2 || a.Load(segSize) != 3 {
		t.Fatal("cross-segment writes interfere")
	}
	if a.Segments() != 2 {
		t.Fatalf("segments = %d, want 2", a.Segments())
	}
}

func TestOutOfRangePanics(t *testing.T) {
	var a Array
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on out-of-range index")
		}
	}()
	a.Word(MaxWords)
}

// TestConcurrentMaterialization: racing first-touchers of one segment
// must converge on a single segment, so writes are never lost.
func TestConcurrentMaterialization(t *testing.T) {
	var a Array
	const goroutines = 8
	const words = 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < words; i++ {
				// All goroutines hammer the same fresh segment region.
				a.Word(uint64(i)).Add(1)
			}
		}(g)
	}
	wg.Wait()
	for i := 0; i < words; i++ {
		if got := a.Load(uint64(i)); got != goroutines {
			t.Fatalf("word %d = %d, want %d (lost update through racing segments)", i, got, goroutines)
		}
	}
}

func TestBytesReporting(t *testing.T) {
	var a Array
	a.Word(0)
	if a.Bytes() != segSize*8 {
		t.Fatalf("Bytes = %d, want %d", a.Bytes(), segSize*8)
	}
}
