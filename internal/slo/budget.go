package slo

import (
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// Budget is the checked-in SLO file (slo/budgets.json): a flat list of
// checks evaluated against a current result set and, for the relative
// bounds, a baseline set.
type Budget struct {
	Schema int     `json:"schema"`
	Checks []Check `json:"checks"`
}

// Check is one service-level objective on one metric. Absolute bounds
// (Min, Max) gate the current value alone; relative bounds
// (MaxDropFrac, MaxRiseFrac) gate drift against the baseline and are
// skipped when no baseline row exists. A check with no bounds at all
// is a presence assertion: the row and metric must exist.
type Check struct {
	// Experiment, Algorithm and Metric select the value; Case narrows
	// to one sub-case ("" matches only the empty case, "*" every case).
	Experiment string `json:"experiment"`
	Algorithm  string `json:"algorithm"`
	Case       string `json:"case,omitempty"`
	Metric     string `json:"metric"`
	// Min and Max are inclusive absolute bounds on the current value.
	Min *float64 `json:"min,omitempty"`
	Max *float64 `json:"max,omitempty"`
	// MaxDropFrac fails when current < baseline*(1-f) — for
	// higher-is-better metrics (throughput). MaxRiseFrac fails when
	// current > baseline*(1+f) — for lower-is-better metrics (tail
	// ratios, shed counts). Fractions, not percents.
	MaxDropFrac *float64 `json:"max_drop_frac,omitempty"`
	MaxRiseFrac *float64 `json:"max_rise_frac,omitempty"`
	// Note is free-form documentation carried into findings.
	Note string `json:"note,omitempty"`
}

// ReadBudget loads and validates a budget file.
func ReadBudget(path string) (Budget, error) {
	var b Budget
	data, err := os.ReadFile(path)
	if err != nil {
		return b, err
	}
	if err := json.Unmarshal(data, &b); err != nil {
		return b, fmt.Errorf("slo: %s: %w", path, err)
	}
	if b.Schema != SchemaVersion {
		return b, fmt.Errorf("slo: %s: budget schema %d, want %d", path, b.Schema, SchemaVersion)
	}
	for i, c := range b.Checks {
		if c.Experiment == "" || c.Algorithm == "" || c.Metric == "" {
			return b, fmt.Errorf("slo: %s: check %d needs experiment, algorithm and metric", path, i)
		}
		for _, f := range []*float64{c.MaxDropFrac, c.MaxRiseFrac} {
			if f != nil && *f < 0 {
				return b, fmt.Errorf("slo: %s: check %d: negative drift fraction", path, i)
			}
		}
	}
	return b, nil
}

// Finding is one evaluated (check, row) pair.
type Finding struct {
	Experiment string   `json:"experiment"`
	Algorithm  string   `json:"algorithm"`
	Case       string   `json:"case,omitempty"`
	Metric     string   `json:"metric"`
	Value      float64  `json:"value"`
	Baseline   *float64 `json:"baseline,omitempty"`
	Pass       bool     `json:"pass"`
	// Skipped marks checks that could not run (experiment absent from
	// the current set, or relative bound without a baseline); skipped
	// findings never fail the gate.
	Skipped bool `json:"skipped,omitempty"`
	// Detail is the human-readable verdict.
	Detail string `json:"detail"`
}

// Report is fifogate's machine-readable output.
type Report struct {
	Schema  int       `json:"schema"`
	Pass    bool      `json:"pass"`
	Checked int       `json:"checked"`
	Failed  int       `json:"failed"`
	Skipped int       `json:"skipped"`
	Results []Finding `json:"findings"`
}

// Evaluate scores every budget check against current (and baseline for
// the relative bounds). Within an experiment that IS present, a
// missing algorithm row or metric fails the gate — a result-schema
// drift silently dropping a measured series must not read as green.
// A whole experiment absent from current skips its checks instead, so
// one budget file can cover experiments CI does not always run.
func Evaluate(b Budget, current, baseline map[string]Result) Report {
	rep := Report{Schema: SchemaVersion, Pass: true}
	for _, c := range b.Checks {
		cur, ok := current[c.Experiment]
		if !ok {
			rep.Skipped++
			rep.Results = append(rep.Results, Finding{
				Experiment: c.Experiment, Algorithm: c.Algorithm, Case: c.Case,
				Metric: c.Metric, Skipped: true, Pass: true,
				Detail: fmt.Sprintf("experiment %q not in current results; skipped", c.Experiment),
			})
			continue
		}
		var base *Result
		if bb, ok := baseline[c.Experiment]; ok {
			base = &bb
		}
		for _, row := range matchRows(cur, c) {
			rep.Checked++
			f := evalOne(c, row, base)
			if !f.Pass {
				rep.Failed++
				rep.Pass = false
			}
			rep.Results = append(rep.Results, f)
		}
	}
	return rep
}

// matchRows returns the rows a check applies to. No matching row
// yields a synthetic missing row so evalOne can fail it.
func matchRows(r Result, c Check) []Row {
	var out []Row
	for _, row := range r.Rows {
		if row.Algorithm != c.Algorithm {
			continue
		}
		if c.Case == "*" || row.Case == c.Case {
			out = append(out, row)
		}
	}
	if len(out) == 0 {
		out = append(out, Row{Algorithm: c.Algorithm, Case: c.Case})
	}
	return out
}

// evalOne scores one check against one row.
func evalOne(c Check, row Row, base *Result) Finding {
	f := Finding{
		Experiment: c.Experiment, Algorithm: c.Algorithm, Case: row.Case,
		Metric: c.Metric, Pass: true,
	}
	v, ok := row.Metrics[c.Metric]
	if !ok {
		f.Pass = false
		f.Detail = fmt.Sprintf("%s/%s: metric %q missing from current results", c.Experiment, c.Algorithm, c.Metric)
		return f
	}
	f.Value = v
	if c.Min != nil && v < *c.Min {
		f.Pass = false
		f.Detail = fmt.Sprintf("%s/%s%s %s = %g below floor %g", c.Experiment, c.Algorithm, caseSuffix(row.Case), c.Metric, v, *c.Min)
		return f
	}
	if c.Max != nil && v > *c.Max {
		f.Pass = false
		f.Detail = fmt.Sprintf("%s/%s%s %s = %g above ceiling %g", c.Experiment, c.Algorithm, caseSuffix(row.Case), c.Metric, v, *c.Max)
		return f
	}
	if c.MaxDropFrac != nil || c.MaxRiseFrac != nil {
		var bv *float64
		if base != nil {
			if brow, ok := base.Find(row.Algorithm, row.Case); ok {
				if x, ok := brow.Metrics[c.Metric]; ok {
					bv = &x
				}
			}
		}
		if bv == nil {
			f.Skipped = true
			f.Detail = fmt.Sprintf("%s/%s%s %s = %g; no baseline, drift bound skipped", c.Experiment, c.Algorithm, caseSuffix(row.Case), c.Metric, v)
			return f
		}
		f.Baseline = bv
		if c.MaxDropFrac != nil && v < *bv*(1-*c.MaxDropFrac) {
			f.Pass = false
			f.Detail = fmt.Sprintf("%s/%s%s %s = %g dropped more than %.0f%% below baseline %g", c.Experiment, c.Algorithm, caseSuffix(row.Case), c.Metric, v, *c.MaxDropFrac*100, *bv)
			return f
		}
		if c.MaxRiseFrac != nil && v > *bv*(1+*c.MaxRiseFrac) {
			f.Pass = false
			f.Detail = fmt.Sprintf("%s/%s%s %s = %g rose more than %.0f%% above baseline %g", c.Experiment, c.Algorithm, caseSuffix(row.Case), c.Metric, v, *c.MaxRiseFrac*100, *bv)
			return f
		}
	}
	if f.Detail == "" {
		f.Detail = fmt.Sprintf("%s/%s%s %s = %g ok", c.Experiment, c.Algorithm, caseSuffix(row.Case), c.Metric, v)
	}
	return f
}

func caseSuffix(kase string) string {
	if kase == "" {
		return ""
	}
	return "[" + kase + "]"
}

// TrajectoryEntry is one line of results/TRAJECTORY.jsonl: a dated
// gate verdict plus the budgeted metric values, so the perf trajectory
// of the repo is greppable without unpacking per-run artifacts.
type TrajectoryEntry struct {
	Time    string             `json:"time"`
	Pass    bool               `json:"pass"`
	Checked int                `json:"checked"`
	Failed  int                `json:"failed"`
	Skipped int                `json:"skipped"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// NewTrajectoryEntry flattens a report into a trajectory line, keying
// each non-skipped finding as experiment/algorithm[case]/metric.
func NewTrajectoryEntry(rep Report) TrajectoryEntry {
	e := TrajectoryEntry{
		Time:    time.Now().UTC().Format(time.RFC3339),
		Pass:    rep.Pass,
		Checked: rep.Checked,
		Failed:  rep.Failed,
		Skipped: rep.Skipped,
		Metrics: map[string]float64{},
	}
	for _, f := range rep.Results {
		if f.Skipped && f.Value == 0 {
			continue
		}
		e.Metrics[f.Experiment+"/"+f.Algorithm+caseSuffix(f.Case)+"/"+f.Metric] = f.Value
	}
	return e
}

// AppendTrajectory appends e as one JSON line to path, creating the
// file if needed.
func AppendTrajectory(path string, e TrajectoryEntry) error {
	line, err := json.Marshal(e)
	if err != nil {
		return err
	}
	fh, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer fh.Close()
	_, err = fh.Write(append(line, '\n'))
	return err
}
