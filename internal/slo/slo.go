// Package slo defines the versioned benchmark result schema every
// fifobench experiment emits, the budget format that bounds those
// results, and the evaluator behind cmd/fifogate.
//
// The point is a single currency for performance claims: each
// experiment (smoke, batch, overload, latency) produces one Result —
// an envelope of rows keyed by algorithm and sub-case, each row a flat
// map of named float metrics — instead of a hand-rolled JSON shape per
// experiment. Budgets (slo/budgets.json) then express service-level
// objectives against those names: absolute floors and ceilings, and
// relative drift bounds against a baseline directory. fifogate
// evaluates a budget over a current (and optionally baseline) result
// set and produces a machine-readable Report, appending one line per
// run to the TRAJECTORY.jsonl perf-trajectory log.
package slo

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"
)

// SchemaVersion is the current Result and Budget schema. Readers
// reject other versions loudly rather than mis-scoring silently
// migrated metrics.
const SchemaVersion = 1

// Result is one experiment's output: the envelope fifobench writes for
// every -format json experiment.
type Result struct {
	// Schema is the envelope version; always SchemaVersion on write.
	Schema int `json:"schema"`
	// Experiment names the producing experiment: "smoke", "batch",
	// "overload" or "latency".
	Experiment string `json:"experiment"`
	// GoVersion and GOMAXPROCS describe the producing toolchain and
	// parallelism, for trajectory forensics.
	GoVersion  string `json:"go_version,omitempty"`
	GOMAXPROCS int    `json:"gomaxprocs,omitempty"`
	// GeneratedAt is the RFC 3339 production time.
	GeneratedAt string `json:"generated_at,omitempty"`
	// Rows carries the measurements.
	Rows []Row `json:"rows"`
}

// Row is one measured configuration: an algorithm, an optional
// sub-case discriminator (batch size, operation side …), and its named
// metrics.
type Row struct {
	// Algorithm is the catalog key ("evq-cas", "evq-seg", …).
	Algorithm string `json:"algorithm"`
	// Label is the human display name; never matched on.
	Label string `json:"label,omitempty"`
	// Case discriminates multiple rows of one algorithm within an
	// experiment ("batch=64", "op=enqueue"); empty when the algorithm
	// appears once.
	Case string `json:"case,omitempty"`
	// Metrics maps metric name to value. Units are part of the name
	// ("ops_per_sec", "enqueue_p99_ns", "base_p999_us").
	Metrics map[string]float64 `json:"metrics"`
}

// NewResult returns an envelope for the named experiment stamped with
// the schema version and the producing environment.
func NewResult(experiment string) Result {
	return Result{
		Schema:      SchemaVersion,
		Experiment:  experiment,
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Rows:        []Row{},
	}
}

// Write encodes r as indented JSON.
func Write(w io.Writer, r Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadFile decodes one Result file, rejecting unknown schema versions
// and envelopes without an experiment name.
func ReadFile(path string) (Result, error) {
	var r Result
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("slo: %s: %w", path, err)
	}
	if r.Schema != SchemaVersion {
		return r, fmt.Errorf("slo: %s: schema %d, want %d (regenerate with current fifobench)", path, r.Schema, SchemaVersion)
	}
	if r.Experiment == "" {
		return r, fmt.Errorf("slo: %s: missing experiment name", path)
	}
	return r, nil
}

// LoadDir reads every result envelope in dir (BENCH_*.json), keyed by
// experiment name. Files that are not schema-versioned envelopes —
// e.g. the overload CSV twin or legacy artifacts — are skipped;
// malformed envelopes and duplicate experiments are errors.
func LoadDir(dir string) (map[string]Result, error) {
	return LoadDirLog(dir, nil)
}

// LoadDirLog is LoadDir with a skip log: every BENCH_*.json that fails
// the envelope probe is reported through logf instead of vanishing
// silently, so a result file a new emitter writes with a typo'd or
// missing schema cannot be quietly ignored by the gate. A nil logf
// restores the silent behavior.
func LoadDirLog(dir string, logf func(format string, args ...any)) (map[string]Result, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	out := make(map[string]Result)
	for _, p := range paths {
		// Peek for the envelope marker first so non-envelope JSON in the
		// directory (legacy shapes, foreign artifacts) is skipped, not
		// fatal.
		var probe struct {
			Schema     int    `json:"schema"`
			Experiment string `json:"experiment"`
		}
		data, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		if json.Unmarshal(data, &probe) != nil || probe.Schema == 0 {
			if logf != nil {
				logf("slo: %s: not a schema-%d result envelope, skipped", p, SchemaVersion)
			}
			continue
		}
		r, err := ReadFile(p)
		if err != nil {
			return nil, err
		}
		if _, dup := out[r.Experiment]; dup {
			return nil, fmt.Errorf("slo: duplicate experiment %q in %s", r.Experiment, dir)
		}
		out[r.Experiment] = r
	}
	return out, nil
}

// Find returns the row matching (algorithm, case) and whether it
// exists.
func (r Result) Find(algorithm, kase string) (Row, bool) {
	for _, row := range r.Rows {
		if row.Algorithm == algorithm && row.Case == kase {
			return row, true
		}
	}
	return Row{}, false
}
