package slo

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func fp(v float64) *float64 { return &v }

func testResult(opsPerSec float64) Result {
	r := NewResult("smoke")
	r.Rows = []Row{{
		Algorithm: "evq-cas",
		Case:      "bounded",
		Metrics:   map[string]float64{"ops_per_sec": opsPerSec, "rejected": 3},
	}}
	return r
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_smoke.json")
	fh, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := Write(fh, testResult(1e6)); err != nil {
		t.Fatal(err)
	}
	fh.Close()
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Experiment != "smoke" || got.Schema != SchemaVersion {
		t.Fatalf("bad envelope: %+v", got)
	}
	row, ok := got.Find("evq-cas", "bounded")
	if !ok || row.Metrics["ops_per_sec"] != 1e6 {
		t.Fatalf("row lost in round trip: %+v", got.Rows)
	}

	m, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m["smoke"]; !ok {
		t.Fatalf("LoadDir missed the envelope: %v", m)
	}
}

func TestReadFileRejectsWrongSchema(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_x.json")
	os.WriteFile(path, []byte(`{"schema": 99, "experiment": "x", "rows": []}`), 0o644)
	if _, err := ReadFile(path); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("want schema error, got %v", err)
	}
}

func TestLoadDirSkipsLegacyShapes(t *testing.T) {
	dir := t.TempDir()
	// A legacy bare-array artifact must be skipped, not fatal.
	os.WriteFile(filepath.Join(dir, "BENCH_legacy.json"), []byte(`[{"key": "evq-cas"}]`), 0o644)
	fh, _ := os.Create(filepath.Join(dir, "BENCH_smoke.json"))
	Write(fh, testResult(1e6))
	fh.Close()
	m, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 1 {
		t.Fatalf("want exactly the envelope, got %v", m)
	}
}

func TestLoadDirLogReportsSkips(t *testing.T) {
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "BENCH_legacy.json"), []byte(`[{"key": "evq-cas"}]`), 0o644)
	os.WriteFile(filepath.Join(dir, "BENCH_noschema.json"), []byte(`{"experiment": "typo"}`), 0o644)
	fh, _ := os.Create(filepath.Join(dir, "BENCH_smoke.json"))
	Write(fh, testResult(1e6))
	fh.Close()

	var logged []string
	m, err := LoadDirLog(dir, func(format string, args ...any) {
		logged = append(logged, fmt.Sprintf(format, args...))
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 1 {
		t.Fatalf("want exactly the envelope, got %v", m)
	}
	if len(logged) != 2 {
		t.Fatalf("want 2 skip logs, got %v", logged)
	}
	for _, line := range logged {
		if !strings.Contains(line, "skipped") || !strings.Contains(line, "BENCH_") {
			t.Fatalf("skip log missing context: %q", line)
		}
	}
}

func TestEvaluateBounds(t *testing.T) {
	budget := Budget{Schema: SchemaVersion, Checks: []Check{
		{Experiment: "smoke", Algorithm: "evq-cas", Case: "bounded", Metric: "ops_per_sec", Min: fp(5e5)},
		{Experiment: "smoke", Algorithm: "evq-cas", Case: "bounded", Metric: "rejected", Max: fp(10)},
	}}
	cur := map[string]Result{"smoke": testResult(1e6)}

	rep := Evaluate(budget, cur, nil)
	if !rep.Pass || rep.Checked != 2 || rep.Failed != 0 {
		t.Fatalf("clean run should pass: %+v", rep)
	}

	rep = Evaluate(budget, map[string]Result{"smoke": testResult(1e5)}, nil)
	if rep.Pass || rep.Failed != 1 {
		t.Fatalf("floor breach should fail: %+v", rep)
	}
}

func TestEvaluateDrift(t *testing.T) {
	budget := Budget{Schema: SchemaVersion, Checks: []Check{
		{Experiment: "smoke", Algorithm: "evq-cas", Case: "bounded", Metric: "ops_per_sec", MaxDropFrac: fp(0.5)},
		{Experiment: "smoke", Algorithm: "evq-cas", Case: "bounded", Metric: "rejected", MaxRiseFrac: fp(1.0)},
	}}
	base := map[string]Result{"smoke": testResult(1e6)}

	// Within bounds: half the throughput is exactly the edge, stay above.
	rep := Evaluate(budget, map[string]Result{"smoke": testResult(6e5)}, base)
	if !rep.Pass {
		t.Fatalf("within drift bounds should pass: %+v", rep)
	}
	// 10x regression trips the drop bound.
	rep = Evaluate(budget, map[string]Result{"smoke": testResult(1e5)}, base)
	if rep.Pass || rep.Failed != 1 {
		t.Fatalf("drop past bound should fail: %+v", rep)
	}
	// No baseline: drift checks skip, never fail.
	rep = Evaluate(budget, map[string]Result{"smoke": testResult(1e5)}, nil)
	if !rep.Pass || rep.Checked != 2 {
		t.Fatalf("driftless evaluation should skip, not fail: %+v", rep)
	}
}

func TestEvaluateMissingRowFails(t *testing.T) {
	budget := Budget{Schema: SchemaVersion, Checks: []Check{
		{Experiment: "smoke", Algorithm: "evq-seg", Case: "unbounded", Metric: "ops_per_sec", Min: fp(1)},
	}}
	rep := Evaluate(budget, map[string]Result{"smoke": testResult(1e6)}, nil)
	if rep.Pass {
		t.Fatalf("missing algorithm row must fail the gate: %+v", rep)
	}
}

func TestEvaluateMissingExperimentSkips(t *testing.T) {
	budget := Budget{Schema: SchemaVersion, Checks: []Check{
		{Experiment: "latency", Algorithm: "evq-cas", Case: "op=enqueue", Metric: "p999_ns", Max: fp(1e7)},
	}}
	rep := Evaluate(budget, map[string]Result{"smoke": testResult(1e6)}, nil)
	if !rep.Pass || rep.Skipped != 1 {
		t.Fatalf("absent experiment should skip: %+v", rep)
	}
}

func TestEvaluateCaseWildcard(t *testing.T) {
	r := NewResult("batch")
	for _, kase := range []string{"batch=8", "batch=64"} {
		r.Rows = append(r.Rows, Row{Algorithm: "evq-cas", Case: kase,
			Metrics: map[string]float64{"speedup": 1.5}})
	}
	budget := Budget{Schema: SchemaVersion, Checks: []Check{
		{Experiment: "batch", Algorithm: "evq-cas", Case: "*", Metric: "speedup", Min: fp(1.0)},
	}}
	rep := Evaluate(budget, map[string]Result{"batch": r}, nil)
	if !rep.Pass || rep.Checked != 2 {
		t.Fatalf("wildcard case should check every row: %+v", rep)
	}
}

func TestTrajectoryAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "TRAJECTORY.jsonl")
	rep := Evaluate(
		Budget{Schema: SchemaVersion, Checks: []Check{
			{Experiment: "smoke", Algorithm: "evq-cas", Case: "bounded", Metric: "ops_per_sec", Min: fp(1)},
		}},
		map[string]Result{"smoke": testResult(1e6)}, nil)
	for i := 0; i < 2; i++ {
		if err := AppendTrajectory(path, NewTrajectoryEntry(rep)); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 trajectory lines, got %d: %q", len(lines), data)
	}
	if !strings.Contains(lines[0], `"smoke/evq-cas[bounded]/ops_per_sec":1000000`) {
		t.Fatalf("trajectory line missing budgeted metric: %s", lines[0])
	}
}

func TestReadBudgetValidates(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "b.json")
	os.WriteFile(bad, []byte(`{"schema": 1, "checks": [{"metric": "x"}]}`), 0o644)
	if _, err := ReadBudget(bad); err == nil {
		t.Fatal("check without experiment/algorithm should be rejected")
	}
	os.WriteFile(bad, []byte(`{"schema": 2, "checks": []}`), 0o644)
	if _, err := ReadBudget(bad); err == nil {
		t.Fatal("wrong budget schema should be rejected")
	}
}
