// Package stats provides the summary statistics and series manipulation
// the experiment harness needs: per-configuration run summaries (the
// paper reports "the average of 50 runs where each run is the mean time
// needed to complete the thread's iterations") and series normalization
// for Figure 6(c)/(d), which divide every curve by the CAS-based
// implementation's curve.
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Summary condenses repeated measurements of one configuration.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes a Summary of xs. Panics on empty input: a summary of
// nothing is a harness bug.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		panic("stats: empty sample")
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if len(xs) > 1 {
		s.StdDev = math.Sqrt(ss / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s
}

// CI95 returns the half-width of the 95% confidence interval of the mean
// under a normal approximation.
func (s Summary) CI95() float64 {
	if s.N < 2 {
		return 0
	}
	return 1.96 * s.StdDev / math.Sqrt(float64(s.N))
}

// SummarizeDurations converts durations to seconds and summarizes.
func SummarizeDurations(ds []time.Duration) Summary {
	xs := make([]float64, len(ds))
	for i, d := range ds {
		xs[i] = d.Seconds()
	}
	return Summarize(xs)
}

// Point is one (x, y) sample of a series, e.g. (thread count, seconds).
type Point struct {
	X int
	Y float64
}

// Series is one labelled curve of a figure.
type Series struct {
	Label  string
	Points []Point
}

// At returns the Y value at x and whether the series has it.
func (s Series) At(x int) (float64, bool) {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y, true
		}
	}
	return 0, false
}

// Normalize divides every series by the base series point-wise,
// reproducing the construction of Figure 6(c)/(d) ("the basis of
// normalization was chosen to be our CAS-based implementation"). Points
// of base with Y == 0 or missing X are dropped from the output. The base
// series itself normalizes to a flat line at 1.
func Normalize(series []Series, baseLabel string) ([]Series, error) {
	var base *Series
	for i := range series {
		if series[i].Label == baseLabel {
			base = &series[i]
			break
		}
	}
	if base == nil {
		return nil, fmt.Errorf("stats: base series %q not found", baseLabel)
	}
	out := make([]Series, 0, len(series))
	for _, s := range series {
		ns := Series{Label: s.Label}
		for _, p := range s.Points {
			b, ok := base.At(p.X)
			if !ok || b == 0 {
				continue
			}
			ns.Points = append(ns.Points, Point{X: p.X, Y: p.Y / b})
		}
		out = append(out, ns)
	}
	return out, nil
}

// GeoMean returns the geometric mean of the Y values of a series,
// summarizing a normalized curve in one figure-of-merit.
func GeoMean(s Series) float64 {
	if len(s.Points) == 0 {
		return 0
	}
	var logSum float64
	for _, p := range s.Points {
		if p.Y <= 0 {
			return 0
		}
		logSum += math.Log(p.Y)
	}
	return math.Exp(logSum / float64(len(s.Points)))
}
