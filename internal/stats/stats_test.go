package stats

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if !almost(s.Mean, 2.5) || !almost(s.Min, 1) || !almost(s.Max, 4) || !almost(s.Median, 2.5) {
		t.Fatalf("summary = %+v", s)
	}
	if s.N != 4 {
		t.Fatalf("N = %d", s.N)
	}
	// Sample stddev of 1..4 is sqrt(5/3).
	if !almost(s.StdDev, math.Sqrt(5.0/3.0)) {
		t.Fatalf("stddev = %v", s.StdDev)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.StdDev != 0 || s.Median != 7 || s.CI95() != 0 {
		t.Fatalf("summary = %+v", s)
	}
}

func TestSummarizeOddMedian(t *testing.T) {
	s := Summarize([]float64{5, 1, 9})
	if s.Median != 5 {
		t.Fatalf("median = %v, want 5", s.Median)
	}
}

func TestSummarizeEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Summarize(nil) did not panic")
		}
	}()
	Summarize(nil)
}

// TestSummaryBoundsProperty: min <= median <= max and min <= mean <= max
// for any sample.
func TestSummaryBoundsProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := raw[:0]
		for _, x := range raw {
			// The harness summarizes run times in seconds; restrict the
			// property to magnitudes where float summation cannot
			// overflow (the full float range trips +Inf in the sum).
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		return s.Min <= s.Median && s.Median <= s.Max && s.Min <= s.Mean && s.Mean <= s.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSummarizeDurations(t *testing.T) {
	s := SummarizeDurations([]time.Duration{time.Second, 3 * time.Second})
	if !almost(s.Mean, 2.0) {
		t.Fatalf("mean = %v", s.Mean)
	}
}

func TestNormalize(t *testing.T) {
	series := []Series{
		{Label: "base", Points: []Point{{1, 2}, {2, 4}, {4, 8}}},
		{Label: "other", Points: []Point{{1, 4}, {2, 4}, {4, 4}}},
	}
	out, err := Normalize(series, "base")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range out[0].Points {
		if !almost(p.Y, 1) {
			t.Fatalf("base normalized to %v at x=%d", p.Y, p.X)
		}
	}
	want := map[int]float64{1: 2, 2: 1, 4: 0.5}
	for _, p := range out[1].Points {
		if !almost(p.Y, want[p.X]) {
			t.Fatalf("other at x=%d normalized to %v, want %v", p.X, p.Y, want[p.X])
		}
	}
}

func TestNormalizeMissingBase(t *testing.T) {
	if _, err := Normalize([]Series{{Label: "a"}}, "nope"); err == nil {
		t.Fatal("missing base accepted")
	}
}

func TestNormalizeSkipsMissingPoints(t *testing.T) {
	series := []Series{
		{Label: "base", Points: []Point{{1, 2}}},
		{Label: "other", Points: []Point{{1, 4}, {2, 6}}},
	}
	out, err := Normalize(series, "base")
	if err != nil {
		t.Fatal(err)
	}
	if len(out[1].Points) != 1 || out[1].Points[0].X != 1 {
		t.Fatalf("points not filtered to base domain: %+v", out[1].Points)
	}
}

func TestGeoMean(t *testing.T) {
	s := Series{Points: []Point{{1, 2}, {2, 8}}}
	if g := GeoMean(s); !almost(g, 4) {
		t.Fatalf("geomean = %v, want 4", g)
	}
	if GeoMean(Series{}) != 0 {
		t.Fatal("geomean of empty series should be 0")
	}
	if GeoMean(Series{Points: []Point{{1, 0}}}) != 0 {
		t.Fatal("geomean with zero point should be 0")
	}
}

func TestSeriesAt(t *testing.T) {
	s := Series{Points: []Point{{3, 1.5}}}
	if y, ok := s.At(3); !ok || !almost(y, 1.5) {
		t.Fatalf("At(3) = %v,%v", y, ok)
	}
	if _, ok := s.At(4); ok {
		t.Fatal("At(4) found a phantom point")
	}
}
