// Package tagptr implements the single-word bit-packing encodings every
// algorithm in this module relies on.
//
// The paper's central constraint is that all synchronization must happen
// through *pointer-wide* (single-word) atomic primitives. Each scheme
// here folds the auxiliary state needed to defeat one of the ABA problem
// classes of §3 into one 64-bit word:
//
//   - Versioned words (VerBits value + VerTagBits version) give the LL/SC
//     emulation its store-conditional semantics: a successful SC bumps the
//     version, so an intervening writer always changes the word even when
//     it restores the same value (data-ABA and null-ABA defence).
//   - Counted words (32-bit value + 32-bit count) reproduce the Shann et
//     al. per-slot (value, reference counter) pairs on machines whose CAS
//     covers value and counter together — precisely the configuration the
//     paper describes for 32-bit architectures with 64-bit CAS.
//   - LSB tags distinguish Algorithm 2's thread-owned LLSCvar reservation
//     markers from node handles. The paper exploits that allocators return
//     even addresses; our arena guarantees the same for handles, so "odd
//     value" still means "reserved by the thread owning value^1".
package tagptr

// Versioned-word layout. The value field is wide enough for any arena
// handle this module can produce (arena capacity is far below 2^VerBits
// slots), while VerTagBits of version make the ABA window 1 in 2^24 full
// wraps — the same "extremely unlikely" standard the paper's index-ABA
// argument accepts.
const (
	// VerBits is the width of the value field in a versioned word.
	VerBits = 40
	// VerTagBits is the width of the version field in a versioned word.
	VerTagBits = 64 - VerBits
	// VerValueMask masks the value field.
	VerValueMask = (uint64(1) << VerBits) - 1
	// VerMax is the largest value storable in a versioned word.
	VerMax = VerValueMask
)

// PackVer packs value and version into one word. value must fit in
// VerBits; the caller is expected to enforce this (the arena does), and
// PackVer panics otherwise because silently truncating a handle would
// corrupt a queue.
func PackVer(value uint64, ver uint32) uint64 {
	if value > VerValueMask {
		panic("tagptr: value overflows versioned word")
	}
	return value | uint64(ver)<<VerBits
}

// UnpackVer splits a versioned word into its value and version fields.
func UnpackVer(w uint64) (value uint64, ver uint32) {
	return w & VerValueMask, uint32(w >> VerBits)
}

// VerValue extracts only the value field.
func VerValue(w uint64) uint64 { return w & VerValueMask }

// VerTag extracts only the version field. Versions wrap modulo
// 2^VerTagBits; only equality ever matters.
func VerTag(w uint64) uint32 { return uint32(w >> VerBits) }

// BumpVer returns the word holding newValue with the version incremented
// relative to old. This is the word a successful store-conditional
// installs.
func BumpVer(old uint64, newValue uint64) uint64 {
	return PackVer(newValue, VerTag(old)+1)
}

// Counted-word layout (Shann et al. slots): low 32 bits value, high 32
// bits modification count.
const (
	// CountedValueMask masks the 32-bit value field of a counted word.
	CountedValueMask = (uint64(1) << 32) - 1
	// CountedMax is the largest value storable in a counted word.
	CountedMax = CountedValueMask
)

// PackCounted packs a 32-bit value and count into one word. Panics when
// value exceeds 32 bits, for the same reason as PackVer.
func PackCounted(value uint64, count uint32) uint64 {
	if value > CountedValueMask {
		panic("tagptr: value overflows counted word")
	}
	return value | uint64(count)<<32
}

// UnpackCounted splits a counted word into its value and count fields.
func UnpackCounted(w uint64) (value uint64, count uint32) {
	return w & CountedValueMask, uint32(w >> 32)
}

// CountedValue extracts only the value field of a counted word.
func CountedValue(w uint64) uint64 { return w & CountedValueMask }

// CountedCount extracts only the count field of a counted word.
func CountedCount(w uint64) uint32 { return uint32(w >> 32) }

// RePackCounted returns the word holding newValue with the count bumped
// relative to old — the word a Shann-style slot update installs.
func RePackCounted(old uint64, newValue uint64) uint64 {
	return PackCounted(newValue, CountedCount(old)+1)
}

// LSB reservation tags (Algorithm 2). A tagged word is an LLSCvar handle
// with bit 0 set; handles themselves are always even and nonzero.

// Tag returns the reservation marker for an LLSCvar handle (the paper's
// var^1 with var even).
func Tag(handle uint64) uint64 { return handle | 1 }

// Untag recovers the LLSCvar handle from a reservation marker (the
// paper's slot^1 with slot odd).
func Untag(marker uint64) uint64 { return marker &^ 1 }

// IsTagged reports whether w is a reservation marker rather than a node
// handle or null.
func IsTagged(w uint64) bool { return w&1 == 1 }
