package tagptr

import (
	"testing"
	"testing/quick"
)

func TestPackVerRoundTrip(t *testing.T) {
	f := func(value uint64, ver uint32) bool {
		value &= VerValueMask
		ver &= (1 << VerTagBits) - 1
		w := PackVer(value, ver)
		v2, t2 := UnpackVer(w)
		return v2 == value && t2 == ver
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPackVerOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("PackVer accepted an overflowing value")
		}
	}()
	PackVer(VerValueMask+1, 0)
}

func TestBumpVer(t *testing.T) {
	w := PackVer(100, 7)
	b := BumpVer(w, 200)
	if VerValue(b) != 200 {
		t.Errorf("value = %d, want 200", VerValue(b))
	}
	if VerTag(b) != 8 {
		t.Errorf("tag = %d, want 8", VerTag(b))
	}
}

func TestBumpVerWraps(t *testing.T) {
	maxTag := uint32(1<<VerTagBits) - 1
	w := PackVer(5, maxTag)
	b := BumpVer(w, 5)
	if VerTag(b) != 0 {
		t.Errorf("tag after wrap = %d, want 0", VerTag(b))
	}
	if VerValue(b) != 5 {
		t.Errorf("value after wrap = %d, want 5", VerValue(b))
	}
}

// TestBumpVerAlwaysChangesWord is the property the LL/SC emulation's
// correctness rests on: installing any value via BumpVer must produce a
// word different from the old one, even when the value is unchanged.
func TestBumpVerAlwaysChangesWord(t *testing.T) {
	f := func(value, newValue uint64, ver uint32) bool {
		value &= VerValueMask
		newValue &= VerValueMask
		w := PackVer(value, ver&((1<<VerTagBits)-1))
		return BumpVer(w, newValue) != w
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPackCountedRoundTrip(t *testing.T) {
	f := func(value uint32, count uint32) bool {
		w := PackCounted(uint64(value), count)
		v2, c2 := UnpackCounted(w)
		return v2 == uint64(value) && c2 == count
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPackCountedOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("PackCounted accepted an overflowing value")
		}
	}()
	PackCounted(CountedValueMask+1, 0)
}

func TestRePackCounted(t *testing.T) {
	w := PackCounted(9, 41)
	r := RePackCounted(w, 11)
	if CountedValue(r) != 11 || CountedCount(r) != 42 {
		t.Errorf("got (%d,%d), want (11,42)", CountedValue(r), CountedCount(r))
	}
}

// TestRePackCountedAlwaysChangesWord is the Shann slot ABA defence.
func TestRePackCountedAlwaysChangesWord(t *testing.T) {
	f := func(value, newValue uint32, count uint32) bool {
		w := PackCounted(uint64(value), count)
		return RePackCounted(w, uint64(newValue)) != w
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTagUntag(t *testing.T) {
	f := func(h uint64) bool {
		h &^= 1 // handles are even
		m := Tag(h)
		return IsTagged(m) && Untag(m) == h && !IsTagged(h)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIsTaggedZero(t *testing.T) {
	if IsTagged(0) {
		t.Error("null must not read as tagged")
	}
}
