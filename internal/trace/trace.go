// Package trace is the flight recorder for the queue family: per-session
// bounded ring buffers of fixed-size operation records, written lock-free
// from the operations' own goroutines and merged on demand into a
// time-ordered dump. Where the metrics layer (internal/xsync) answers
// aggregate questions — how many CAS per op, what is the p99.9 — the
// flight recorder answers the individual ones the aggregates fold away:
// which enqueue ate 40 retry rounds before shedding, whether the p99.9
// straggler was a victim rescued by helping or a spare-pool miss that
// zeroed a ring inline.
//
// # Recording policy
//
// Recording rides the same sampled path the histogram layer already
// gates: an operation whose latency was sampled (one in 2^SampleShift
// per session side, see xsync.SampleShift) writes one record, so the
// common case adds nothing beyond the branch that notices it was not
// sampled. Outcomes that end a pathological operation — ErrContended,
// ErrDeadline, a starvation rescue — and the segment lifecycle events
// (grow, spare-pool hit/miss) are recorded unconditionally: they are
// rare by construction (each ends a long retry loop or a segment
// boundary crossing), and they are precisely the records a postmortem
// needs complete. Hot shed paths (ErrFull, ErrOverloaded, segment
// sheds) stay sampled so the recorder cannot become its own overload
// problem. With no recorder attached every recording site is a single
// nil-check branch: zero atomics, no clock reads.
//
// # Ring mechanics
//
// A Recorder owns a fixed set of rings; each session handle binds to one
// (round-robin, like the counter stripes), so writers on distinct rings
// never contend and writers sharing a ring contend only on one cursor
// word. A record write reserves a slot with one FetchAndAdd, marks the
// slot busy, stores the payload words, and publishes a nonzero stamp; a
// concurrent Snapshot validates the stamp around its copy and counts a
// mismatch as a dropped (torn) record instead of returning it. Records
// overwritten by ring wrap-around are likewise counted, so
// Dropped() + len(Snapshot()) is a faithful account of everything ever
// recorded.
package trace

import (
	"context"
	"math/bits"
	"runtime/trace"
	"sort"
	"sync/atomic"
	"time"
)

// Kind classifies the operation (or event) a record describes.
type Kind uint8

const (
	// KindEnqueue and KindDequeue are single operations.
	KindEnqueue Kind = iota
	KindDequeue
	// KindEnqueueBatch and KindDequeueBatch are batch calls; Record.N is
	// the element count that took effect.
	KindEnqueueBatch
	KindDequeueBatch
	// KindEvent marks queue-lifecycle records (segment grow, spare-pool
	// traffic, scavenges); the Outcome says which, Record.N the
	// magnitude.
	KindEvent
)

// String returns the label used in dumps.
func (k Kind) String() string {
	switch k {
	case KindEnqueue:
		return "enqueue"
	case KindDequeue:
		return "dequeue"
	case KindEnqueueBatch:
		return "enqueue-batch"
	case KindDequeueBatch:
		return "dequeue-batch"
	case KindEvent:
		return "event"
	default:
		return "unknown"
	}
}

// Outcome says how the recorded operation ended, or which lifecycle
// event fired for KindEvent records.
type Outcome uint8

const (
	// OutcomeOK is a completed operation (sampled).
	OutcomeOK Outcome = iota
	// OutcomeFull is an enqueue refused with ErrFull (sampled: under a
	// full bounded queue this is the hot path).
	OutcomeFull
	// OutcomeContended is an operation shed with ErrContended after its
	// retry budget ran out (always recorded).
	OutcomeContended
	// OutcomeDeadline is an operation aborted with ErrDeadline mid-retry
	// (always recorded).
	OutcomeDeadline
	// OutcomeOverloaded is an enqueue refused with ErrOverloaded by
	// depth-watermark admission control (sampled: shedding is designed to
	// run at millions per second).
	OutcomeOverloaded
	// OutcomeRescued is an operation completed on the session's behalf by
	// the starvation-helping protocol — the victim's side of a rescue
	// (always recorded).
	OutcomeRescued
	// OutcomeSegShed is an enqueue the segmented queue refused because
	// segment watermarks or the memory bound blocked growth (sampled).
	OutcomeSegShed
	// OutcomeSegGrow is a segment append: the tail ring filled and the
	// chain grew; N is the live segment count after (always recorded).
	OutcomeSegGrow
	// OutcomeSpareHit is a segment append served from the pre-armed
	// spare pool (always recorded).
	OutcomeSpareHit
	// OutcomeSpareMiss is a segment append that found the spare pool
	// empty and allocated inline — the overload-tail contributor PR-6
	// hunted (always recorded).
	OutcomeSpareMiss
	// OutcomeScavenge is a ScavengeOrphans pass that reclaimed N
	// presumed-dead session records (always recorded).
	OutcomeScavenge

	numOutcomes
)

// String returns the label used in dumps and metric reconciliation.
func (o Outcome) String() string {
	switch o {
	case OutcomeOK:
		return "ok"
	case OutcomeFull:
		return "full"
	case OutcomeContended:
		return "contended"
	case OutcomeDeadline:
		return "deadline"
	case OutcomeOverloaded:
		return "overloaded"
	case OutcomeRescued:
		return "rescued"
	case OutcomeSegShed:
		return "segment-shed"
	case OutcomeSegGrow:
		return "segment-grow"
	case OutcomeSpareHit:
		return "spare-hit"
	case OutcomeSpareMiss:
		return "spare-miss"
	case OutcomeScavenge:
		return "scavenge"
	default:
		return "unknown"
	}
}

// Rare reports whether records with this outcome are written
// unconditionally rather than on the sampled beat. Rare outcomes either
// end a long retry loop (contended, deadline, rescued) or fire at
// segment-boundary cadence (grow, spare traffic, scavenge), so recording
// every one costs nothing measurable and gives the postmortem a complete
// set; everything else — including the hot shed paths — stays sampled.
func (o Outcome) Rare() bool {
	switch o {
	case OutcomeContended, OutcomeDeadline, OutcomeRescued,
		OutcomeSegGrow, OutcomeSpareHit, OutcomeSpareMiss, OutcomeScavenge:
		return true
	}
	return false
}

// Record is one decoded flight-recorder entry.
type Record struct {
	// Start is the operation's start time (or the event's fire time) in
	// nanoseconds since the Unix epoch; Snapshot orders by it.
	Start int64
	// Latency is the operation's wall latency in nanoseconds, 0 when the
	// record was written on the unconditional (rare-outcome) path without
	// a sampled clock reading.
	Latency uint64
	// Retries is the number of failed retry-loop iterations the operation
	// burned (0 for events).
	Retries uint32
	// Spins is the backoff spin ceiling in effect when the record was
	// written — how hard the adaptive backoff was braking (0 without
	// backoff).
	Spins uint32
	// N is the batch element count for batch kinds and the event
	// magnitude (live segments, records scavenged) for KindEvent.
	N uint32
	// Kind and Outcome classify the record.
	Kind    Kind
	Outcome Outcome
	// Seq is the ring ticket, unique per ring; with Ring it tie-breaks
	// identical timestamps into a stable order.
	Seq uint64
	// Ring is the ring index the record was read from.
	Ring int
}

// numRings fixes the ring count. Sessions bind round-robin, so the
// recorder keeps working at any session count; 32 matches the counter
// stripe count so a typical soak population gets a private ring each.
const numRings = 32

// DefaultPerRing is the per-ring record capacity used when the caller
// passes 0.
const DefaultPerRing = 1 << 12

// slotWords is the payload size of one slot in 8-byte words.
const slotWords = 4

// slot is one fixed-size record in a ring. stamp is 0 while empty or
// mid-write and ticket+1 once published; payload words are atomic so a
// racing Snapshot copy is defined behaviour (the stamp check around the
// copy rejects torn reads).
type slot struct {
	stamp atomic.Uint64
	w     [slotWords]atomic.Uint64
	_     [3]uint64 // pad to 64 bytes so adjacent slots do not false-share
}

// ring is one bounded record buffer. cursor only grows; slot i of write
// t is t & mask.
type ring struct {
	slots  []slot
	mask   uint64
	cursor atomic.Uint64
	_      [6]uint64
}

// write reserves the next slot and publishes one record.
func (r *ring) write(w0, w1, w2, w3 uint64) {
	t := r.cursor.Add(1) - 1
	s := &r.slots[t&r.mask]
	s.stamp.Store(0)
	s.w[0].Store(w0)
	s.w[1].Store(w1)
	s.w[2].Store(w2)
	s.w[3].Store(w3)
	s.stamp.Store(t + 1)
}

// Recorder is the per-queue flight recorder: a fixed set of rings plus
// the drop accounting. Create with New; hand each session a Handle.
type Recorder struct {
	rings  [numRings]ring
	nextID atomic.Uint32
	// torn counts records a Snapshot had to discard because a writer
	// raced the copy.
	torn atomic.Uint64
	// logCtx, when set, receives runtime/trace Log events for rare
	// outcomes so a stall in `go tool trace` is attributable to the
	// specific op's retry storm. nil disables.
	logCtx atomic.Pointer[context.Context]
}

// New returns a recorder holding perRing records in each of its rings
// (rounded up to a power of two; 0 selects DefaultPerRing).
func New(perRing int) *Recorder {
	if perRing <= 0 {
		perRing = DefaultPerRing
	}
	n := 1
	if perRing > 1 {
		n = 1 << bits.Len(uint(perRing-1))
	}
	r := &Recorder{}
	for i := range r.rings {
		r.rings[i].slots = make([]slot, n)
		r.rings[i].mask = uint64(n - 1)
	}
	return r
}

// PerRing returns the per-ring record capacity.
func (r *Recorder) PerRing() int {
	if r == nil {
		return 0
	}
	return len(r.rings[0].slots)
}

// SetLogContext routes rare-outcome records to runtime/trace.Log under
// ctx when Go execution tracing is active, linking flight-recorder
// entries to the runtime trace timeline. nil detaches.
func (r *Recorder) SetLogContext(ctx context.Context) {
	if r == nil {
		return
	}
	if ctx == nil {
		r.logCtx.Store(nil)
		return
	}
	r.logCtx.Store(&ctx)
}

// Handle returns a writer handle bound to the next ring (round-robin).
// A nil recorder yields a disabled handle whose recording sites cost one
// branch.
func (r *Recorder) Handle() Handle {
	if r == nil {
		return Handle{}
	}
	id := r.nextID.Add(1) - 1
	return Handle{r: &r.rings[id%numRings], rec: r, phase: id}
}

// Written reports how many records were ever written across all rings.
func (r *Recorder) Written() uint64 {
	if r == nil {
		return 0
	}
	var sum uint64
	for i := range r.rings {
		sum += r.rings[i].cursor.Load()
	}
	return sum
}

// Dropped counts records no Snapshot can return anymore: entries
// overwritten by ring wrap-around plus snapshot copies discarded as
// torn. Monotonic (torn only grows; overwrites only grow), so it exports
// directly as the nbq_trace_dropped_total counter.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	sum := r.torn.Load()
	for i := range r.rings {
		rg := &r.rings[i]
		if c, n := rg.cursor.Load(), uint64(len(rg.slots)); c > n {
			sum += c - n
		}
	}
	return sum
}

// Snapshot merges every ring into one time-ordered dump (by Start, ties
// broken by ring and ticket). It runs concurrently with writers: a slot
// being rewritten during the copy is discarded and counted in Dropped
// rather than returned torn. The dump holds at most
// numRings × PerRing records — the newest per ring; older entries have
// been overwritten and are visible only in Dropped.
func (r *Recorder) Snapshot() []Record {
	if r == nil {
		return nil
	}
	var out []Record
	for ri := range r.rings {
		rg := &r.rings[ri]
		n := rg.cursor.Load()
		if n > uint64(len(rg.slots)) {
			n = uint64(len(rg.slots))
		}
		for si := uint64(0); si < n; si++ {
			s := &rg.slots[si]
			stamp := s.stamp.Load()
			if stamp == 0 {
				continue // empty or mid-write
			}
			w0 := s.w[0].Load()
			w1 := s.w[1].Load()
			w2 := s.w[2].Load()
			w3 := s.w[3].Load()
			if s.stamp.Load() != stamp {
				r.torn.Add(1)
				continue
			}
			out = append(out, Record{
				Start:   int64(w0),
				Latency: w1,
				Retries: uint32(w2 >> 32),
				Spins:   uint32(w2),
				N:       uint32(w3 >> 16),
				Kind:    Kind(w3 >> 8),
				Outcome: Outcome(w3),
				Seq:     stamp - 1,
				Ring:    ri,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Ring != b.Ring {
			return a.Ring < b.Ring
		}
		return a.Seq < b.Seq
	})
	return out
}

// CountByOutcome folds a dump into per-outcome record counts, the view
// the reconciliation drill compares against the Metrics counters.
func CountByOutcome(recs []Record) map[string]uint64 {
	m := make(map[string]uint64, int(numOutcomes))
	for _, r := range recs {
		m[r.Outcome.String()]++
	}
	return m
}

// Handle is one session's writer. Hold it by value in the session and
// call through a pointer (the sampling phase is session-local state,
// safe because sessions are single-goroutine by contract). The zero
// Handle is disabled: every method is a nil-check and return.
type Handle struct {
	r     *ring
	rec   *Recorder
	phase uint32
}

// Enabled reports whether the handle records anything.
func (h *Handle) Enabled() bool { return h.r != nil }

// Op records one operation's completion. start is the histogram layer's
// sampled clock reading: nonzero means this operation was on the sampled
// beat and the record carries a latency; zero means it was not, in which
// case only Rare outcomes are recorded (stamped with the current time,
// no latency). retries and spins describe the retry loop the operation
// ran; n is the element count for batch kinds (pass 0 for singles).
//
// The disabled and unsampled-common-outcome paths return before touching
// any shared memory: no atomics, no clock.
func (h *Handle) Op(start time.Time, kind Kind, out Outcome, retries, spins, n int) {
	if h.r == nil {
		return
	}
	if start.IsZero() && !out.Rare() {
		return
	}
	h.opSlow(start, kind, out, retries, spins, n)
}

// opSlow writes the record; split out so Op stays within the inlining
// budget at its hot-path call sites.
func (h *Handle) opSlow(start time.Time, kind Kind, out Outcome, retries, spins, n int) {
	var ts int64
	var lat uint64
	if !start.IsZero() {
		ts = start.UnixNano()
		lat = uint64(time.Since(start))
	} else {
		ts = time.Now().UnixNano()
	}
	h.r.write(uint64(ts), lat, pack32(retries)<<32|pack32(spins), uint64(pack16(n))<<16|uint64(kind)<<8|uint64(out))
	h.log(out)
}

// OpSampled records an operation outcome at a site with no histogram
// clock to ride — the public layer's admission sheds, which fail before
// any word-level work. The handle keeps its own sampling phase (same
// 1-in-2^xsync.SampleShift cadence, no clock on the skipped beats) so
// the shed fast path stays as cheap as the counter increment it already
// pays. Rare outcomes record on every call.
func (h *Handle) OpSampled(kind Kind, out Outcome, n int) {
	if h.r == nil {
		return
	}
	h.phase++
	if h.phase&sampleMask != sampleMask && !out.Rare() {
		return
	}
	ts := time.Now().UnixNano()
	h.r.write(uint64(ts), 0, 0, uint64(pack16(n))<<16|uint64(kind)<<8|uint64(out))
	h.log(out)
}

// Event records one lifecycle event (always; events are rare by
// construction). n is the event magnitude.
func (h *Handle) Event(out Outcome, n int) {
	if h.r == nil {
		return
	}
	ts := time.Now().UnixNano()
	h.r.write(uint64(ts), 0, 0, uint64(pack16(n))<<16|uint64(KindEvent)<<8|uint64(out))
	h.log(out)
}

// log mirrors rare outcomes into the Go runtime trace when one is being
// collected, so `go tool trace` shows the retry storm next to the
// scheduler's view of the stalled goroutine.
func (h *Handle) log(out Outcome) {
	if !out.Rare() || !trace.IsEnabled() {
		return
	}
	if ctx := h.rec.logCtx.Load(); ctx != nil {
		trace.Log(*ctx, "nbqueue.outcome", out.String())
	}
}

// sampleMask matches xsync.SampleShift (1 in 32). Duplicated as a plain
// constant so this package stays dependency-free below xsync.
const sampleMask = 1<<5 - 1

// pack32 clamps a non-negative int into 32 bits.
func pack32(v int) uint64 {
	if v < 0 {
		v = 0
	}
	if v > int(^uint32(0)) {
		return uint64(^uint32(0))
	}
	return uint64(v)
}

// pack16 clamps a non-negative int into 16 bits.
func pack16(v int) uint16 {
	if v < 0 {
		v = 0
	}
	if v > int(^uint16(0)) {
		return ^uint16(0)
	}
	return uint16(v)
}
