package trace

import (
	"sync"
	"testing"
	"time"
)

func TestDisabledHandleIsFree(t *testing.T) {
	var h Handle
	if h.Enabled() {
		t.Fatal("zero handle reports enabled")
	}
	// Every method on a disabled handle must be a no-op.
	h.Op(time.Now(), KindEnqueue, OutcomeOK, 3, 16, 0)
	h.OpSampled(KindEnqueue, OutcomeOverloaded, 0)
	h.Event(OutcomeSegGrow, 2)

	var r *Recorder
	if r.Snapshot() != nil || r.Dropped() != 0 || r.Written() != 0 || r.PerRing() != 0 {
		t.Fatal("nil recorder not inert")
	}
	hn := r.Handle()
	if hn.Enabled() {
		t.Fatal("nil recorder handed out an enabled handle")
	}
}

func TestSampledAndRareRecording(t *testing.T) {
	r := New(64)
	h := r.Handle()
	if !h.Enabled() {
		t.Fatal("handle disabled")
	}

	// Unsampled common outcome: no record.
	h.Op(time.Time{}, KindEnqueue, OutcomeOK, 0, 0, 0)
	if got := r.Written(); got != 0 {
		t.Fatalf("unsampled OK wrote %d records", got)
	}
	// Unsampled rare outcome: recorded with a fresh timestamp, no latency.
	h.Op(time.Time{}, KindEnqueue, OutcomeContended, 40, 1024, 0)
	// Sampled common outcome: recorded with latency.
	start := time.Now().Add(-time.Millisecond)
	h.Op(start, KindDequeue, OutcomeOK, 2, 8, 0)
	// Batch kind carries N.
	h.Op(start, KindEnqueueBatch, OutcomeOK, 0, 0, 64)
	// Event.
	h.Event(OutcomeSpareMiss, 5)

	recs := r.Snapshot()
	if len(recs) != 4 {
		t.Fatalf("got %d records, want 4", len(recs))
	}
	counts := CountByOutcome(recs)
	if counts["contended"] != 1 || counts["ok"] != 2 || counts["spare-miss"] != 1 {
		t.Fatalf("bad outcome counts: %v", counts)
	}
	for _, rec := range recs {
		switch {
		case rec.Outcome == OutcomeContended:
			if rec.Retries != 40 || rec.Spins != 1024 {
				t.Fatalf("contended record lost retry/spin detail: %+v", rec)
			}
			if rec.Latency != 0 {
				t.Fatalf("unsampled rare record carries latency: %+v", rec)
			}
			if rec.Start == 0 {
				t.Fatalf("rare record missing timestamp: %+v", rec)
			}
		case rec.Kind == KindDequeue:
			if rec.Latency < uint64(time.Millisecond) {
				t.Fatalf("sampled record lost latency: %+v", rec)
			}
		case rec.Kind == KindEnqueueBatch:
			if rec.N != 64 {
				t.Fatalf("batch record lost N: %+v", rec)
			}
		case rec.Kind == KindEvent:
			if rec.Outcome != OutcomeSpareMiss || rec.N != 5 {
				t.Fatalf("event record mangled: %+v", rec)
			}
		}
	}
}

func TestOpSampledCadence(t *testing.T) {
	r := New(1 << 10)
	h := r.Handle()
	const ops = 32 * 100
	for i := 0; i < ops; i++ {
		h.OpSampled(KindEnqueue, OutcomeOverloaded, 0)
	}
	if got, want := r.Written(), uint64(100); got != want {
		t.Fatalf("self-sampled cadence wrote %d records for %d ops, want %d", got, ops, want)
	}
	// Rare outcomes ignore the cadence.
	for i := 0; i < 10; i++ {
		h.OpSampled(KindEnqueue, OutcomeContended, 0)
	}
	if got := r.Written(); got != 110 {
		t.Fatalf("rare outcomes were sampled away: wrote %d, want 110", got)
	}
}

func TestSnapshotTimeOrdered(t *testing.T) {
	r := New(256)
	// Spread writes across several handles (rings) with strictly
	// descending timestamps, then check the merge re-orders them.
	base := time.Now().Add(-time.Second)
	for i := 0; i < 8; i++ {
		h := r.Handle()
		h.Op(base.Add(time.Duration(100-i)*time.Millisecond), KindEnqueue, OutcomeOK, 0, 0, 0)
	}
	recs := r.Snapshot()
	if len(recs) != 8 {
		t.Fatalf("got %d records, want 8", len(recs))
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Start < recs[i-1].Start {
			t.Fatalf("snapshot out of order at %d: %d after %d", i, recs[i].Start, recs[i-1].Start)
		}
	}
}

func TestWrapAroundCountsDropped(t *testing.T) {
	r := New(4) // tiny rings so wrap is easy
	h := r.Handle()
	const writes = 20
	for i := 0; i < writes; i++ {
		h.Event(OutcomeSegGrow, i)
	}
	if got := r.Written(); got != writes {
		t.Fatalf("written = %d, want %d", got, writes)
	}
	recs := r.Snapshot()
	if len(recs) != 4 {
		t.Fatalf("snapshot holds %d records, want ring capacity 4", len(recs))
	}
	if got, want := r.Dropped(), uint64(writes-4); got != want {
		t.Fatalf("dropped = %d, want %d", got, want)
	}
	// Conservation: everything written is either visible or dropped.
	if uint64(len(recs))+r.Dropped() != r.Written() {
		t.Fatalf("conservation broken: %d visible + %d dropped != %d written",
			len(recs), r.Dropped(), r.Written())
	}
}

func TestCapacityRounding(t *testing.T) {
	if got := New(0).PerRing(); got != DefaultPerRing {
		t.Fatalf("New(0) per-ring = %d, want %d", got, DefaultPerRing)
	}
	if got := New(100).PerRing(); got != 128 {
		t.Fatalf("New(100) per-ring = %d, want 128", got)
	}
	if got := New(1).PerRing(); got != 1 {
		t.Fatalf("New(1) per-ring = %d, want 1", got)
	}
}

// TestConcurrentSnapshot hammers writers from many goroutines while
// snapshots run, checking the seqlock protocol under the race detector
// and the written = visible + dropped conservation bound at quiescence.
func TestConcurrentSnapshot(t *testing.T) {
	r := New(128)
	const writers = 8
	const perWriter = 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var readerDone sync.WaitGroup
	readerDone.Add(1)
	go func() { // concurrent reader
		defer readerDone.Done()
		for {
			select {
			case <-stop:
				return
			default:
				r.Snapshot()
				r.Dropped()
			}
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := r.Handle()
			start := time.Now()
			for i := 0; i < perWriter; i++ {
				switch i % 3 {
				case 0:
					h.Op(start, KindEnqueue, OutcomeOK, i, 16, 0)
				case 1:
					h.Op(time.Time{}, KindDequeue, OutcomeContended, i, 0, 0)
				case 2:
					h.OpSampled(KindEnqueue, OutcomeOverloaded, 0)
				}
			}
		}(w)
	}
	// Let writers finish, then stop the reader and take a quiescent look.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		close(stop)
		t.Fatal("writers wedged")
	}
	close(stop)
	readerDone.Wait()

	recs := r.Snapshot()
	if uint64(len(recs))+r.Dropped() < r.Written() {
		t.Fatalf("lost records: %d visible + %d dropped < %d written",
			len(recs), r.Dropped(), r.Written())
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Start < recs[i-1].Start {
			t.Fatalf("concurrent snapshot out of order at %d", i)
		}
	}
}

func TestOutcomeStrings(t *testing.T) {
	for o := OutcomeOK; o < numOutcomes; o++ {
		if o.String() == "unknown" {
			t.Fatalf("outcome %d has no label", o)
		}
	}
	for _, k := range []Kind{KindEnqueue, KindDequeue, KindEnqueueBatch, KindDequeueBatch, KindEvent} {
		if k.String() == "unknown" {
			t.Fatalf("kind %d has no label", k)
		}
	}
}
