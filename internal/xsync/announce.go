package xsync

import (
	"runtime"
	"sync/atomic"
	"time"
)

// Announce is the starvation-rescue substrate shared by the Evequoz
// array queues: a small fixed array of help cells through which a
// session that keeps losing its CAS/SC races publishes the stalled
// operation so that winning sessions complete it on its behalf.
//
// Lock-freedom guarantees system-wide progress, not per-thread progress:
// under an adversarial schedule one session's reservation can be
// displaced forever while the others throughput along. The announce
// protocol converts those winners into helpers — after each completed
// operation of its own, a session checks (one atomic load when nothing
// is announced) for a pending cell and executes it with a bounded
// attempt budget. The victim meanwhile keeps executing its own operation
// through the same cell, alternating bounded self-runs with observing
// helper results, so the queue's lock-free progress guarantee is intact:
// no session ever waits on a condition only another specific session can
// establish, except while a claimer is inside its *bounded* run.
//
// Cell life cycle (state word = seq<<annPhaseBits | phase):
//
//	empty --CAS--> setup --Store--> pendEnq|pendDeq
//	pend  --CAS--> run (claimed by victim or helper; exclusive)
//	run   --Store--> done{OK,Full,Empty}   (claimer resolved it)
//	run   --Store--> pend                  (claimer's budget ran out)
//	done  --Store--> empty(seq+1)          (victim consumed the result)
//	pend  --CAS--> empty(seq+1)            (victim retracted: deadline)
//
// The sequence number bumps only when the cell empties, so a stale claim
// CAS from a previous occupancy can never land. Exactly-once execution
// follows from the claim CAS: only the claimer runs the operation, and a
// result is written before the cell can be claimed again.
//
// The documented limitation: a claimer that dies (not merely stalls)
// inside run strands the cell and its victim — in-process Go helpers do
// not die independently of the process, but the chaos crash drills
// disable helping for exactly this reason.
const AnnounceCells = 8

// Cell phases.
const (
	annEmpty uint64 = iota
	annSetup
	annPendEnq
	annPendDeq
	annRunEnq
	annRunDeq
	annDoneOK
	annDoneFull
	annDoneEmpty
)

const (
	annPhaseBits = 4
	annPhaseMask = (1 << annPhaseBits) - 1
)

func annState(seq, phase uint64) uint64 { return seq<<annPhaseBits | phase }

// annCell is one help cell, padded so concurrent cells do not share a
// cache line.
type annCell struct {
	state atomic.Uint64
	val   atomic.Uint64
	_     [6]uint64
}

// Announce is a queue's announce array. A nil *Announce disables helping
// (HelpOne is nil-safe); the Run* entry points are only reached when the
// owning queue configured a starvation bound.
type Announce struct {
	cells [AnnounceCells]annCell
	// pending counts published-but-unconsumed cells; the helpers' fast
	// path is a single load of it.
	pending atomic.Int64
}

// NewAnnounce returns an empty announce array.
func NewAnnounce() *Announce { return &Announce{} }

// Pending reports the number of currently announced operations.
func (a *Announce) Pending() int {
	if a == nil {
		return 0
	}
	return int(a.pending.Load())
}

// AnnounceExec executes bounded runs of raw queue-operation attempts on
// behalf of an announced operation. Implemented by the algorithm
// sessions. Implementations must not recurse into the announce layer:
// a helper executing a victim's operation runs the raw retry rounds
// only, never announcing and never helping further.
type AnnounceExec interface {
	// ExecEnqueue attempts to enqueue v for at most budget retry rounds.
	// done=false means the budget ran out with the operation not
	// performed; full (with done) means the queue was observed full.
	ExecEnqueue(v uint64, budget int) (done, full bool)
	// ExecDequeue attempts to dequeue for at most budget rounds.
	// empty (with done) means the queue was observed empty.
	ExecDequeue(budget int) (v uint64, empty, done bool)
}

// AnnResult is the resolution of an announced operation.
type AnnResult int

const (
	// AnnOK: the operation completed (by the victim or a helper).
	AnnOK AnnResult = iota
	// AnnFull: an announced enqueue resolved against a full queue.
	AnnFull
	// AnnEmpty: an announced dequeue resolved against an empty queue.
	AnnEmpty
	// AnnNoCell: every cell was busy; the operation was never announced
	// and the caller should fall back to its plain retry loop.
	AnnNoCell
	// AnnDeadline: the session deadline passed while the operation was
	// still pending; it was retracted unperformed.
	AnnDeadline
)

// publish claims an empty cell and installs the pending operation.
func (a *Announce) publish(kind, v uint64) (ci int, seq uint64, ok bool) {
	for i := range a.cells {
		c := &a.cells[i]
		st := c.state.Load()
		if st&annPhaseMask != annEmpty {
			continue
		}
		s := st >> annPhaseBits
		if !c.state.CompareAndSwap(st, annState(s, annSetup)) {
			continue
		}
		// The cell is exclusively ours between setup and pend, so the
		// value store cannot race another publisher.
		c.val.Store(v)
		c.state.Store(annState(s, kind))
		a.pending.Add(1)
		return i, s, true
	}
	return 0, 0, false
}

// consume empties a resolved (or self-run) cell. Victim-only.
func (a *Announce) consume(c *annCell, seq uint64) {
	c.state.Store(annState(seq+1, annEmpty))
	a.pending.Add(-1)
}

// RunEnqueue publishes a stalled enqueue of v and drives it to
// resolution. The victim alternates claiming the cell for bounded
// self-execution with observing helper results; deadline (unixnano, 0 =
// none) is honored only while the operation is provably unperformed — a
// result produced by a helper after the deadline is still consumed and
// reported, because the value is in the queue.
func (a *Announce) RunEnqueue(v uint64, ex AnnounceExec, selfBudget int, deadline int64) AnnResult {
	ci, seq, ok := a.publish(annPendEnq, v)
	if !ok {
		return AnnNoCell
	}
	c := &a.cells[ci]
	for {
		st := c.state.Load()
		switch st & annPhaseMask {
		case annPendEnq:
			if deadline != 0 && time.Now().UnixNano() > deadline {
				if c.state.CompareAndSwap(st, annState(seq+1, annEmpty)) {
					a.pending.Add(-1)
					return AnnDeadline
				}
				continue // a helper claimed it first; resolve that
			}
			if c.state.CompareAndSwap(st, annState(seq, annRunEnq)) {
				done, full := ex.ExecEnqueue(v, selfBudget)
				if !done {
					c.state.Store(annState(seq, annPendEnq))
					runtime.Gosched()
					continue
				}
				a.consume(c, seq)
				if full {
					return AnnFull
				}
				return AnnOK
			}
		case annRunEnq:
			runtime.Gosched() // a helper is inside its bounded run
		case annDoneOK:
			a.consume(c, seq)
			return AnnOK
		case annDoneFull:
			a.consume(c, seq)
			return AnnFull
		}
	}
}

// RunDequeue is RunEnqueue for the dequeue side; on AnnOK the dequeued
// value is returned.
func (a *Announce) RunDequeue(ex AnnounceExec, selfBudget int, deadline int64) (uint64, AnnResult) {
	ci, seq, ok := a.publish(annPendDeq, 0)
	if !ok {
		return 0, AnnNoCell
	}
	c := &a.cells[ci]
	for {
		st := c.state.Load()
		switch st & annPhaseMask {
		case annPendDeq:
			if deadline != 0 && time.Now().UnixNano() > deadline {
				if c.state.CompareAndSwap(st, annState(seq+1, annEmpty)) {
					a.pending.Add(-1)
					return 0, AnnDeadline
				}
				continue
			}
			if c.state.CompareAndSwap(st, annState(seq, annRunDeq)) {
				v, empty, done := ex.ExecDequeue(selfBudget)
				if !done {
					c.state.Store(annState(seq, annPendDeq))
					runtime.Gosched()
					continue
				}
				a.consume(c, seq)
				if empty {
					return 0, AnnEmpty
				}
				return v, AnnOK
			}
		case annRunDeq:
			runtime.Gosched()
		case annDoneOK:
			v := c.val.Load()
			a.consume(c, seq)
			return v, AnnOK
		case annDoneEmpty:
			a.consume(c, seq)
			return 0, AnnEmpty
		}
	}
}

// HelpOne scans for one pending announcement and executes it with the
// given attempt budget, reporting whether it completed a stalled
// operation (a rescue). Sessions call it from their own success paths;
// with nothing announced it costs one atomic load. A helper whose budget
// runs out hands the cell back to pending rather than blocking, so
// helping never trades one stall for another.
func (a *Announce) HelpOne(ex AnnounceExec, budget int) bool {
	if a == nil || a.pending.Load() == 0 {
		return false
	}
	for i := range a.cells {
		c := &a.cells[i]
		st := c.state.Load()
		seq := st >> annPhaseBits
		switch st & annPhaseMask {
		case annPendEnq:
			if !c.state.CompareAndSwap(st, annState(seq, annRunEnq)) {
				continue
			}
			v := c.val.Load()
			done, full := ex.ExecEnqueue(v, budget)
			switch {
			case !done:
				c.state.Store(annState(seq, annPendEnq))
			case full:
				c.state.Store(annState(seq, annDoneFull))
			default:
				c.state.Store(annState(seq, annDoneOK))
			}
			return done
		case annPendDeq:
			if !c.state.CompareAndSwap(st, annState(seq, annRunDeq)) {
				continue
			}
			v, empty, done := ex.ExecDequeue(budget)
			switch {
			case !done:
				c.state.Store(annState(seq, annPendDeq))
			case empty:
				c.state.Store(annState(seq, annDoneEmpty))
			default:
				c.val.Store(v)
				c.state.Store(annState(seq, annDoneOK))
			}
			return done
		}
	}
	return false
}
