package xsync

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// countExec is a flaky AnnounceExec: every third run resolves, the rest
// exhaust their budget, exercising the claim/give-back/re-claim cycle.
type countExec struct {
	attempts atomic.Int64
	dones    atomic.Int64
	deqSeq   atomic.Uint64
}

func (e *countExec) ExecEnqueue(v uint64, budget int) (bool, bool) {
	if e.attempts.Add(1)%3 == 0 {
		e.dones.Add(1)
		return true, false
	}
	return false, false
}

func (e *countExec) ExecDequeue(budget int) (uint64, bool, bool) {
	if e.attempts.Add(1)%3 == 0 {
		e.dones.Add(1)
		return e.deqSeq.Add(2), false, true // even, nonzero, unique
	}
	return 0, false, false
}

// TestAnnounceExactlyOnce drives announcements through concurrent
// helpers and checks each one resolves exactly once.
func TestAnnounceExactlyOnce(t *testing.T) {
	a := NewAnnounce()
	exec := &countExec{}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for h := 0; h < 4; h++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				a.HelpOne(exec, 2)
				runtime.Gosched()
			}
		}()
	}
	const rounds = 300
	enqOK, deqOK := 0, 0
	for i := 0; i < rounds; i++ {
		if res := a.RunEnqueue(uint64(i)*2+2, exec, 2, 0); res == AnnOK {
			enqOK++
		} else {
			t.Fatalf("round %d: RunEnqueue = %v, want AnnOK", i, res)
		}
		v, res := a.RunDequeue(exec, 2, 0)
		if res != AnnOK {
			t.Fatalf("round %d: RunDequeue = %v, want AnnOK", i, res)
		}
		if v == 0 || v&1 != 0 {
			t.Fatalf("round %d: dequeued value %d violates word contract", i, v)
		}
		deqOK++
	}
	close(stop)
	wg.Wait()
	if got := exec.dones.Load(); got != int64(enqOK+deqOK) {
		t.Fatalf("resolving executions = %d, want exactly %d (one per announcement)",
			got, enqOK+deqOK)
	}
	if n := a.Pending(); n != 0 {
		t.Fatalf("pending = %d after all announcements consumed, want 0", n)
	}
}

// neverExec refuses to resolve anything.
type neverExec struct{}

func (neverExec) ExecEnqueue(v uint64, budget int) (bool, bool) { return false, false }
func (neverExec) ExecDequeue(budget int) (uint64, bool, bool)   { return 0, false, false }

// TestAnnounceDeadlineRetract checks a victim whose deadline passed
// retracts the unperformed operation instead of spinning.
func TestAnnounceDeadlineRetract(t *testing.T) {
	a := NewAnnounce()
	past := time.Now().Add(-time.Second).UnixNano()
	if res := a.RunEnqueue(2, neverExec{}, 1, past); res != AnnDeadline {
		t.Fatalf("RunEnqueue past deadline = %v, want AnnDeadline", res)
	}
	if _, res := a.RunDequeue(neverExec{}, 1, past); res != AnnDeadline {
		t.Fatalf("RunDequeue past deadline = %v, want AnnDeadline", res)
	}
	if n := a.Pending(); n != 0 {
		t.Fatalf("pending = %d after retracts, want 0", n)
	}
}

// TestAnnounceNoCell checks publish fails cleanly when every cell is
// occupied.
func TestAnnounceNoCell(t *testing.T) {
	a := NewAnnounce()
	for i := 0; i < AnnounceCells; i++ {
		if _, _, ok := a.publish(annPendEnq, uint64(i)*2+2); !ok {
			t.Fatalf("publish %d failed with %d cells", i, AnnounceCells)
		}
	}
	if res := a.RunEnqueue(2, neverExec{}, 1, 0); res != AnnNoCell {
		t.Fatalf("RunEnqueue with full array = %v, want AnnNoCell", res)
	}
	if _, res := a.RunDequeue(neverExec{}, 1, 0); res != AnnNoCell {
		t.Fatalf("RunDequeue with full array = %v, want AnnNoCell", res)
	}
	if n := a.Pending(); n != AnnounceCells {
		t.Fatalf("pending = %d, want %d", n, AnnounceCells)
	}
}

// TestAnnounceHelperResolvesFullAndEmpty checks the done-full/done-empty
// results propagate to the victim.
type fullEmptyExec struct{}

func (fullEmptyExec) ExecEnqueue(v uint64, budget int) (bool, bool) { return true, true }
func (fullEmptyExec) ExecDequeue(budget int) (uint64, bool, bool)   { return 0, true, true }

func TestAnnounceFullAndEmptyResults(t *testing.T) {
	a := NewAnnounce()
	if res := a.RunEnqueue(2, fullEmptyExec{}, 1, 0); res != AnnFull {
		t.Fatalf("RunEnqueue against full queue = %v, want AnnFull", res)
	}
	if _, res := a.RunDequeue(fullEmptyExec{}, 1, 0); res != AnnEmpty {
		t.Fatalf("RunDequeue against empty queue = %v, want AnnEmpty", res)
	}
}

// TestBackoffPolicyAIMD drives the window with synthetic tallies and
// checks the ceiling rises multiplicatively and decays additively.
func TestBackoffPolicyAIMD(t *testing.T) {
	p := NewBackoffPolicy()
	if got := p.Ceiling(); got != p.MinSpin {
		t.Fatalf("initial ceiling = %d, want MinSpin %d", got, p.MinSpin)
	}
	for i := 0; i < 3*policyWindow; i++ {
		p.record(1, 0)
	}
	high := p.Ceiling()
	if high <= p.MinSpin {
		t.Fatalf("ceiling = %d after sustained failures, want > MinSpin %d", high, p.MinSpin)
	}
	for i := 0; i < 2*policyWindow; i++ {
		p.record(0, 1)
	}
	mid := p.Ceiling()
	if mid >= high {
		t.Fatalf("ceiling = %d after sustained wins, want < %d", mid, high)
	}
	for i := 0; i < 64*policyWindow; i++ {
		p.record(0, 1)
	}
	if got := p.Ceiling(); got != p.MinSpin {
		t.Fatalf("ceiling = %d after long calm, want floor MinSpin %d", got, p.MinSpin)
	}
	if got := p.Ceiling(); got > p.MaxSpin {
		t.Fatalf("ceiling %d above MaxSpin %d", got, p.MaxSpin)
	}
}

// TestBackoffPolicyCounterSignal checks a bound Counters bank overrides
// the session tallies as the failure-rate signal.
func TestBackoffPolicyCounterSignal(t *testing.T) {
	p := NewBackoffPolicy()
	c := NewCounters()
	p.Bind(c)
	h := c.Handle()
	// High contention: 90% CAS failure.
	h.Add(OpCASAttempt, 1000)
	h.Add(OpCASSuccess, 100)
	for i := 0; i < policyWindow; i++ {
		p.record(1, 0)
	}
	raised := p.Ceiling()
	if raised <= p.MinSpin {
		t.Fatalf("ceiling = %d with 90%% counter failure rate, want raised", raised)
	}
	// Calm: every attempt succeeds from here on.
	h.Add(OpCASAttempt, 10000)
	h.Add(OpCASSuccess, 10000)
	for i := 0; i < policyWindow; i++ {
		p.record(0, 1)
	}
	if got := p.Ceiling(); got >= raised {
		t.Fatalf("ceiling = %d after calm counter window, want < %d", got, raised)
	}
}

// TestAdaptiveBackoffSmoke exercises the adaptive Fail/Reset paths
// (limits stay within policy bounds; no panics under the race detector).
func TestAdaptiveBackoffSmoke(t *testing.T) {
	p := NewBackoffPolicy()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b := NewAdaptiveBackoff(p)
			for i := 0; i < 2000; i++ {
				b.Fail()
				if i%3 == 0 {
					b.Reset()
				}
			}
		}()
	}
	wg.Wait()
	if got := p.Ceiling(); got < p.MinSpin || got > p.MaxSpin {
		t.Fatalf("ceiling %d outside [%d, %d]", got, p.MinSpin, p.MaxSpin)
	}
}
