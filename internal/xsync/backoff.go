package xsync

import "runtime"

// Backoff implements bounded exponential backoff for CAS retry loops.
// After a failed CAS the caller invokes Backoff.Fail, which spins for a
// geometrically growing (but capped) number of iterations before
// returning, yielding to the Go scheduler once the cap is reached. Reset
// restores the initial interval after a successful operation.
//
// Lock-free queues exhibit a throughput cliff under heavy CAS contention;
// backoff flattens the cliff at the cost of latency. Whether it pays off
// is workload dependent, which is why the queues accept it as an option
// and the ablation benchmarks measure both configurations.
type Backoff struct {
	limit uint32
	min   uint32
	max   uint32
}

// DefaultBackoffMin and DefaultBackoffMax bound the spin interval of a
// Backoff created by NewBackoff.
const (
	DefaultBackoffMin = 4
	DefaultBackoffMax = 1024
)

// NewBackoff returns a Backoff spinning between min and max iterations.
// Zero values select the defaults.
func NewBackoff(min, max uint32) Backoff {
	if min == 0 {
		min = DefaultBackoffMin
	}
	if max < min {
		max = min
	}
	return Backoff{limit: min, min: min, max: max}
}

// Fail records a failed attempt and blocks the caller for the current
// backoff interval.
func (b *Backoff) Fail() {
	if b.limit == 0 {
		// Zero value: backoff disabled, degrade to a scheduler hint
		// every call so livelock remains impossible under GOMAXPROCS=1.
		runtime.Gosched()
		return
	}
	for i := uint32(0); i < b.limit; i++ {
		procYield()
	}
	if b.limit >= b.max {
		runtime.Gosched()
		return
	}
	b.limit <<= 1
}

// Reset restores the initial interval; call after a successful operation.
func (b *Backoff) Reset() {
	if b.limit != 0 {
		b.limit = b.min
	}
}
