package xsync

import (
	"runtime"
	"sync/atomic"
	"time"
)

// Backoff implements bounded exponential backoff for CAS retry loops.
// After a failed CAS the caller invokes Backoff.Fail, which spins for a
// geometrically growing (but capped) number of iterations before
// returning, yielding to the Go scheduler once the cap is reached. Reset
// restores the initial interval after a successful operation.
//
// Lock-free queues exhibit a throughput cliff under heavy CAS contention;
// backoff flattens the cliff at the cost of latency. Whether it pays off
// is workload dependent, which is why the queues accept it as an option
// and the ablation benchmarks measure both configurations. A Backoff
// created by NewAdaptiveBackoff additionally consults a shared
// BackoffPolicy whose ceiling moves with the live failure rate, so the
// latency cost is only paid while contention is actually present.
type Backoff struct {
	limit uint32
	min   uint32
	max   uint32
	// pol, when non-nil, supplies the adaptive ceiling and aggregates
	// this session's win/loss tallies (pushed every policyPushEvery
	// events to keep the shared words off the per-failure path).
	pol        *BackoffPolicy
	localFails uint32
	localWins  uint32
}

// DefaultBackoffMin and DefaultBackoffMax bound the spin interval of a
// Backoff created by NewBackoff.
const (
	DefaultBackoffMin = 4
	DefaultBackoffMax = 1024
)

// NewBackoff returns a Backoff spinning between min and max iterations.
// Zero values select the defaults.
func NewBackoff(min, max uint32) Backoff {
	if min == 0 {
		min = DefaultBackoffMin
	}
	if max < min {
		max = min
	}
	return Backoff{limit: min, min: min, max: max}
}

// NewAdaptiveBackoff returns a Backoff whose spin ceiling follows p
// (which must be normalized). The per-session geometric growth is
// unchanged; what adapts is how far it may grow before degrading to
// scheduler yields.
func NewAdaptiveBackoff(p *BackoffPolicy) Backoff {
	return Backoff{limit: p.MinSpin, min: p.MinSpin, max: p.MaxSpin, pol: p}
}

// Fail records a failed attempt and blocks the caller for the current
// backoff interval.
func (b *Backoff) Fail() {
	if b.pol != nil {
		b.failAdaptive()
		return
	}
	if b.limit == 0 {
		// Zero value: backoff disabled, degrade to a scheduler hint
		// every call so livelock remains impossible under GOMAXPROCS=1.
		runtime.Gosched()
		return
	}
	for i := uint32(0); i < b.limit; i++ {
		procYield()
	}
	if b.limit >= b.max {
		runtime.Gosched()
		return
	}
	b.limit <<= 1
}

// failAdaptive is Fail under a BackoffPolicy: same geometric growth, but
// the ceiling is the policy's live value rather than a fixed max.
func (b *Backoff) failAdaptive() {
	b.localFails++
	if b.localFails+b.localWins >= policyPushEvery {
		b.pol.record(b.localFails, b.localWins)
		b.localFails, b.localWins = 0, 0
	}
	ceil := b.pol.Ceiling()
	for i := uint32(0); i < b.limit; i++ {
		procYield()
	}
	if b.limit >= ceil {
		b.limit = ceil
		runtime.Gosched()
		return
	}
	b.limit <<= 1
}

// Spins reports the current spin interval — how far the geometric growth
// has run since the last Reset. The flight recorder stores it in op
// records as the "how hard was backoff braking" signal; a zero-value
// (disabled) Backoff reports 0.
func (b *Backoff) Spins() uint32 { return b.limit }

// Reset restores the initial interval; call after a successful operation.
func (b *Backoff) Reset() {
	if b.pol != nil {
		b.localWins++
		if b.localFails+b.localWins >= policyPushEvery {
			b.pol.record(b.localFails, b.localWins)
			b.localFails, b.localWins = 0, 0
		}
		b.limit = b.min
		return
	}
	if b.limit != 0 {
		b.limit = b.min
	}
}

// BackoffPolicy is a shared adaptive-backoff controller: one per queue,
// consulted by every session's Backoff and by the blocking wait layer.
// The controller applies AIMD to retry aggressiveness — under a high
// failure rate the spin ceiling doubles (multiplicative decrease of
// aggressiveness, decongesting the contended words), and once the
// failure rate falls the ceiling decays additively back toward MinSpin
// (restoring low-latency retries). The failure-rate signal is the live
// CAS/SC attempt-vs-success delta from a bound Counters bank when one is
// attached (Bind), and the sessions' own win/loss tallies otherwise.
//
// The exported fields are configuration; mutate them only before the
// policy is shared. Everything else is internally synchronized.
type BackoffPolicy struct {
	// MinSpin is the floor of the adaptive spin ceiling and the interval
	// a session's backoff restarts from after a win. Default 4.
	MinSpin uint32
	// MaxSpin is the hard ceiling the adaptive ceiling may reach.
	// Default 4096.
	MaxSpin uint32
	// WaitSpins is how many yield-retries the blocking wait layer burns
	// before it starts sleeping. Default 64.
	WaitSpins int
	// SleepMin and SleepMax bound the blocking wait layer's exponential
	// sleep. Defaults 10µs and 1ms.
	SleepMin time.Duration
	SleepMax time.Duration
	// RaiseAbove is the failure rate above which the ceiling doubles;
	// LowerBelow the rate below which it decays. Defaults 0.5 and 0.1;
	// rates in between leave the ceiling alone (hysteresis, so the
	// ceiling does not flap at a workload's natural operating point).
	RaiseAbove float64
	LowerBelow float64

	// ceil is the live ceiling, within [MinSpin, MaxSpin].
	ceil atomic.Uint32
	// evts counts recorded events since the last adjustment.
	evts atomic.Uint32
	// fails/wins aggregate session tallies (the Counters-free signal).
	fails atomic.Uint64
	wins  atomic.Uint64
	// adjusting serializes adjustments; prevAtt/prevSucc are only
	// touched while it is held.
	adjusting atomic.Bool
	ctrs      *Counters
	prevAtt   uint64
	prevSucc  uint64
}

const (
	// policyPushEvery is how many win/loss events a session batches
	// locally before pushing them to the shared policy.
	policyPushEvery = 64
	// policyWindow is how many recorded events separate adjustments.
	policyWindow = 1024
	// DefaultMaxSpin is the default adaptive ceiling bound — above
	// DefaultBackoffMax because the adaptive controller only lets the
	// ceiling rise while the failure rate says contention is real.
	DefaultMaxSpin = 4096
	// DefaultWaitSpins mirrors the blocking layer's historical spin
	// count before sleeping.
	DefaultWaitSpins = 64
)

// Default blocking-wait sleep bounds.
const (
	DefaultSleepMin = 10 * time.Microsecond
	DefaultSleepMax = time.Millisecond
)

// NewBackoffPolicy returns a policy with every knob at its default.
func NewBackoffPolicy() *BackoffPolicy {
	p := &BackoffPolicy{}
	p.Normalize()
	return p
}

// Normalize fills zero fields with defaults and initializes the live
// ceiling. Must be called (or NewBackoffPolicy used) before the policy
// is shared.
func (p *BackoffPolicy) Normalize() {
	if p.MinSpin == 0 {
		p.MinSpin = DefaultBackoffMin
	}
	if p.MaxSpin < p.MinSpin {
		p.MaxSpin = DefaultMaxSpin
		if p.MaxSpin < p.MinSpin {
			p.MaxSpin = p.MinSpin
		}
	}
	if p.WaitSpins <= 0 {
		p.WaitSpins = DefaultWaitSpins
	}
	if p.SleepMin <= 0 {
		p.SleepMin = DefaultSleepMin
	}
	if p.SleepMax < p.SleepMin {
		p.SleepMax = DefaultSleepMax
		if p.SleepMax < p.SleepMin {
			p.SleepMax = p.SleepMin
		}
	}
	if p.RaiseAbove == 0 {
		p.RaiseAbove = 0.5
	}
	if p.LowerBelow == 0 {
		p.LowerBelow = 0.1
	}
	if p.ceil.Load() == 0 {
		p.ceil.Store(p.MinSpin)
	}
}

// Bind attaches a counter bank as the failure-rate signal: adjustments
// read the CAS/SC attempt-vs-success deltas recorded there instead of
// the sessions' own tallies. Call before the policy is shared.
func (p *BackoffPolicy) Bind(c *Counters) { p.ctrs = c }

// Ceiling returns the live spin ceiling.
func (p *BackoffPolicy) Ceiling() uint32 { return p.ceil.Load() }

// record aggregates a session's batched tallies and, on window
// boundaries, runs one adjustment. Only one goroutine adjusts at a time;
// losers skip rather than wait.
func (p *BackoffPolicy) record(fails, wins uint32) {
	if fails != 0 {
		p.fails.Add(uint64(fails))
	}
	if wins != 0 {
		p.wins.Add(uint64(wins))
	}
	if p.evts.Add(fails+wins) < policyWindow {
		return
	}
	if !p.adjusting.CompareAndSwap(false, true) {
		return
	}
	p.evts.Store(0)
	p.adjust()
	p.adjusting.Store(false)
}

// adjust applies one AIMD step from the current failure rate. Caller
// holds the adjusting flag.
func (p *BackoffPolicy) adjust() {
	var rate float64
	if p.ctrs != nil {
		// Read successes before attempts so the attempt of every counted
		// success is included and the delta cannot go negative.
		succ := p.ctrs.Total(OpCASSuccess) + p.ctrs.Total(OpSCSuccess)
		att := p.ctrs.Total(OpCASAttempt) + p.ctrs.Total(OpSCAttempt)
		dAtt, dSucc := att-p.prevAtt, succ-p.prevSucc
		p.prevAtt, p.prevSucc = att, succ
		if dAtt == 0 || dSucc > dAtt {
			return
		}
		rate = float64(dAtt-dSucc) / float64(dAtt)
	} else {
		f, w := p.fails.Swap(0), p.wins.Swap(0)
		if f+w == 0 {
			return
		}
		rate = float64(f) / float64(f+w)
	}
	ceil := p.ceil.Load()
	switch {
	case rate > p.RaiseAbove:
		next := ceil * 2
		if next > p.MaxSpin || next < ceil {
			next = p.MaxSpin
		}
		p.ceil.Store(next)
	case rate < p.LowerBelow:
		next := ceil - p.MinSpin
		if next < p.MinSpin || next > ceil {
			next = p.MinSpin
		}
		p.ceil.Store(next)
	}
}
