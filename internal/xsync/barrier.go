// Package xsync supplies the auxiliary synchronization machinery the
// benchmark harness and queue implementations need beyond sync/atomic: a
// reusable sense-reversing barrier for synchronized experiment starts
// (the paper synchronizes all threads "so that none can begin its
// iterations before all others finished their initialization phase"),
// bounded exponential backoff for CAS retry loops, and striped counters
// for low-interference instrumentation of synchronization operations.
package xsync

import (
	"runtime"
	"sync/atomic"
)

// Barrier is a reusable sense-reversing spin barrier for a fixed party
// count. All parties calling Wait block (spinning, yielding to the
// scheduler) until the last party arrives; the barrier then resets itself
// so it can be reused for the next phase without reconstruction.
//
// A spin barrier is used instead of sync.WaitGroup because the harness
// needs every worker goroutine runnable at the instant the measurement
// interval opens; a channel or WaitGroup wakeup staggers workers by
// scheduler latency, which at 64 goroutines is large relative to a queue
// operation.
type Barrier struct {
	parties int32
	count   atomic.Int32
	sense   atomic.Uint32
}

// NewBarrier returns a barrier for n parties. n must be at least 1.
func NewBarrier(n int) *Barrier {
	if n < 1 {
		panic("xsync: barrier party count must be >= 1")
	}
	return &Barrier{parties: int32(n)}
}

// Parties returns the number of parties the barrier synchronizes.
func (b *Barrier) Parties() int { return int(b.parties) }

// Wait blocks until all parties have called Wait for the current phase.
// It returns the phase's serial sense, which alternates 0/1 per phase;
// callers normally ignore it.
func (b *Barrier) Wait() uint32 {
	sense := b.sense.Load()
	if b.count.Add(1) == b.parties {
		// Last arriver: reset the count and flip the sense,
		// releasing all spinners.
		b.count.Store(0)
		b.sense.Store(sense ^ 1)
		return sense
	}
	for spins := 0; b.sense.Load() == sense; spins++ {
		if spins < 64 {
			procYield()
		} else {
			runtime.Gosched()
		}
	}
	return sense
}

// procYield burns a handful of cycles without touching memory, standing
// in for the PAUSE instruction in a portable way.
func procYield() {
	for i := 0; i < 8; i++ {
		_ = i
	}
}
