package xsync

import (
	"sync/atomic"
)

// OpKind enumerates the synchronization primitives the instrumented
// queues count. The paper's §6 argues about algorithm cost in terms of
// the number of successful CAS and FetchAndAdd operations per queue
// operation (Algorithm 2: three CAS plus two FetchAndAdd; Michael–Scott:
// two CAS to enqueue, one to dequeue; Doherty: about seven); the T-syncops
// experiment reproduces those figures from these counters.
type OpKind int

const (
	// OpCASAttempt counts every CAS issued, successful or not.
	OpCASAttempt OpKind = iota
	// OpCASSuccess counts CAS operations that succeeded.
	OpCASSuccess
	// OpFAA counts FetchAndAdd operations.
	OpFAA
	// OpLL counts load-linked operations (real or simulated).
	OpLL
	// OpSCAttempt counts store-conditional attempts.
	OpSCAttempt
	// OpSCSuccess counts store-conditional successes.
	OpSCSuccess
	// OpEnqueue counts completed enqueue operations.
	OpEnqueue
	// OpDequeue counts completed (non-empty) dequeue operations.
	OpDequeue
	// OpContended counts operations abandoned with ErrContended because
	// their retry budget ran out (see queue.ErrContended).
	OpContended
	// OpScavenge counts per-thread records reclaimed by the orphan
	// scavenger (sessions presumed abandoned without Detach).
	OpScavenge
	// OpLeak counts sessions garbage collected without Detach (the
	// finalizer safety net fired; see nbqueue.LeakedSessions).
	OpLeak
	// OpSegAlloc counts segment rings allocated fresh by the segmented
	// queue (first use of a pool slot; later uses count as OpSegRecycle).
	OpSegAlloc
	// OpSegRecycle counts retired segment rings reset and relinked by the
	// segmented queue instead of allocating fresh memory.
	OpSegRecycle
	// OpSegRetire counts drained segments handed to the hazard domain for
	// reclamation by the segmented queue.
	OpSegRetire
	// OpRescue counts starved operations completed by a helping session:
	// the victim published its stalled operation to the announce array and
	// a winning thread executed it (see Announce).
	OpRescue
	// OpOverload counts enqueues shed with ErrOverloaded by watermark
	// admission control before any slot-protocol work.
	OpOverload
	// OpDeadline counts operations aborted mid-retry-loop with
	// ErrDeadline because their session deadline passed.
	OpDeadline
	// OpSegFree counts prepared-but-never-linked segments returned to the
	// pool by the segmented queue (append-race losers that found no spare
	// room, replenish backouts, and scavenged append orphans).
	OpSegFree
	// OpSegShed counts enqueues the segmented queue refused because
	// segment-count watermarks or the memory bound converted would-be
	// growth into shedding.
	OpSegShed
	// OpSegSpareHit counts segment appends served by popping a pre-armed
	// segment from the spare pool (no ring memory touched on the hot
	// path).
	OpSegSpareHit
	// OpSegSpareMiss counts segment appends that found the spare pool
	// empty and fell back to allocating or recycling inline.
	OpSegSpareMiss
	// OpSegFinalizeHelp counts closed segments finalized and unlinked by
	// a helping enqueuer via the announced finalize task rather than by a
	// dequeuer inline.
	OpSegFinalizeHelp

	numOpKinds
)

// String returns the short label used in syncops tables.
func (k OpKind) String() string {
	switch k {
	case OpCASAttempt:
		return "cas-attempt"
	case OpCASSuccess:
		return "cas-success"
	case OpFAA:
		return "faa"
	case OpLL:
		return "ll"
	case OpSCAttempt:
		return "sc-attempt"
	case OpSCSuccess:
		return "sc-success"
	case OpEnqueue:
		return "enqueue"
	case OpDequeue:
		return "dequeue"
	case OpContended:
		return "contended"
	case OpScavenge:
		return "scavenge"
	case OpLeak:
		return "leak"
	case OpSegAlloc:
		return "seg-alloc"
	case OpSegRecycle:
		return "seg-recycle"
	case OpSegRetire:
		return "seg-retire"
	case OpRescue:
		return "rescue"
	case OpOverload:
		return "overload-shed"
	case OpDeadline:
		return "deadline-abort"
	case OpSegFree:
		return "seg-free"
	case OpSegShed:
		return "seg-shed"
	case OpSegSpareHit:
		return "seg-spare-hit"
	case OpSegSpareMiss:
		return "seg-spare-miss"
	case OpSegFinalizeHelp:
		return "seg-finalize-help"
	default:
		return "unknown"
	}
}

// counterStripes is the number of independent counter banks. Striping
// keeps instrumentation from becoming its own contention hot spot: each
// goroutine hashes to a stripe, so the common case is an uncontended
// atomic add on a private cache line.
const counterStripes = 32

type stripe struct {
	vals [numOpKinds]atomic.Uint64
	_    [7]uint64
}

// Counters is a striped bank of per-OpKind counters. The zero value is
// nil-safe in the sense that queue code always goes through the Counter
// helper below, which tolerates a nil receiver; a nil *Counters costs a
// single predictable branch per recording site, so instrumentation can be
// compiled in permanently and enabled per queue instance.
type Counters struct {
	stripes [counterStripes]stripe
	nextID  atomic.Uint32
}

// NewCounters returns an empty counter bank.
func NewCounters() *Counters { return &Counters{} }

// Handle is a per-goroutine accessor bound to one stripe of a Counters
// bank. Handles are cheap value types; each worker goroutine obtains its
// own via Counters.Handle.
type Handle struct {
	s *stripe
}

// Handle returns an accessor bound to a fresh stripe (round-robin). A nil
// receiver yields a no-op Handle.
func (c *Counters) Handle() Handle {
	if c == nil {
		return Handle{}
	}
	id := c.nextID.Add(1) - 1
	return Handle{s: &c.stripes[id%counterStripes]}
}

// Inc adds one to kind. No-op on a zero Handle.
func (h Handle) Inc(kind OpKind) {
	if h.s != nil {
		h.s.vals[kind].Add(1)
	}
}

// Add adds n to kind. No-op on a zero Handle.
func (h Handle) Add(kind OpKind, n uint64) {
	if h.s != nil {
		h.s.vals[kind].Add(n)
	}
}

// Total sums kind across all stripes.
func (c *Counters) Total(kind OpKind) uint64 {
	if c == nil {
		return 0
	}
	var sum uint64
	for i := range c.stripes {
		sum += c.stripes[i].vals[kind].Load()
	}
	return sum
}

// Snapshot returns all totals keyed by OpKind.
func (c *Counters) Snapshot() map[OpKind]uint64 {
	m := make(map[OpKind]uint64, int(numOpKinds))
	for k := OpKind(0); k < numOpKinds; k++ {
		m[k] = c.Total(k)
	}
	return m
}

// Reset zeroes every counter.
func (c *Counters) Reset() {
	if c == nil {
		return
	}
	for i := range c.stripes {
		for k := range c.stripes[i].vals {
			c.stripes[i].vals[k].Store(0)
		}
	}
}

// PerOp returns the mean number of kind events per completed queue
// operation (enqueues plus dequeues). Returns 0 when no operations have
// completed.
func (c *Counters) PerOp(kind OpKind) float64 {
	ops := c.Total(OpEnqueue) + c.Total(OpDequeue)
	if ops == 0 {
		return 0
	}
	return float64(c.Total(kind)) / float64(ops)
}
