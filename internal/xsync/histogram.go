package xsync

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// HistKind enumerates the per-operation distributions the instrumented
// queues record. Latencies are nanoseconds of one enqueue/dequeue call
// (sampled, see SampleShift); retries are the number of failed
// retry-loop iterations the operation burned before succeeding or
// shedding with ErrContended (recorded for every operation).
type HistKind int

const (
	// HistEnqLatency is enqueue wall latency in nanoseconds.
	HistEnqLatency HistKind = iota
	// HistDeqLatency is dequeue wall latency in nanoseconds (successful
	// and shed dequeues only; empty polls are not recorded).
	HistDeqLatency
	// HistEnqRetries counts failed retry-loop iterations per enqueue.
	HistEnqRetries
	// HistDeqRetries counts failed retry-loop iterations per dequeue.
	HistDeqRetries
	// HistEnqBatch records the size of each EnqueueBatch call (the count
	// of elements actually committed, including 0 for a batch that made
	// no progress). Single enqueues are not recorded here.
	HistEnqBatch
	// HistDeqBatch records the size of each DequeueBatch call.
	HistDeqBatch

	numHistKinds
)

// String returns the label used in tables and metric names.
func (k HistKind) String() string {
	switch k {
	case HistEnqLatency:
		return "enqueue-latency"
	case HistDeqLatency:
		return "dequeue-latency"
	case HistEnqRetries:
		return "enqueue-retries"
	case HistDeqRetries:
		return "dequeue-retries"
	case HistEnqBatch:
		return "enqueue-batch-size"
	case HistDeqBatch:
		return "dequeue-batch-size"
	default:
		return "unknown"
	}
}

// HistBuckets is the number of log2 buckets: bucket k holds values v
// with bits.Len64(v) == k, i.e. bucket 0 is exactly {0} and bucket k
// (k >= 1) spans [2^(k-1), 2^k). Power-of-two bucketing (HDR-style with
// zero sub-bucket precision) keeps recording to one shift and one
// atomic add while bounding the relative quantile error at 2x — plenty
// for the order-of-magnitude tail questions soaks ask.
const HistBuckets = 65

// BucketUpper returns the largest value bucket k can hold (the
// Prometheus `le` bound of the cumulative bucket through k).
func BucketUpper(k int) uint64 {
	if k >= 64 {
		return math.MaxUint64
	}
	return (uint64(1) << k) - 1
}

// SampleShift sets the latency sampling rate: one operation in
// 2^SampleShift per session reads the clock and records its latency.
// Retry counts are recorded for every operation (they need no clock).
// Sampling keeps the enabled-metrics hot path within the ~10% overhead
// budget; quantiles remain unbiased unless the workload's latency is
// correlated with the sample phase, which the per-session phase offsets
// make unlikely.
const SampleShift = 5

// sampleMask selects the sampled operations.
const sampleMask = (1 << SampleShift) - 1

// hist is one striped histogram bank: log2 buckets plus sum/min/max for
// exact edge statistics the buckets quantize away.
type hist struct {
	buckets [HistBuckets]atomic.Uint64
	sum     atomic.Uint64
	min     atomic.Uint64 // math.MaxUint64 until first observation
	max     atomic.Uint64
	_       [4]uint64
}

// observe records v into the bank. The v==0 case is one atomic add:
// zero never raises max or sum, and View derives Min == 0 from the zero
// bucket. Nonzero min/max updates use fast-path loads so the CAS loop
// only runs while the extremes are still moving.
func (h *hist) observe(v uint64) {
	if v == 0 {
		// Kept loop-free so observe inlines into the recording sites.
		h.buckets[0].Add(1)
		return
	}
	h.observeSlow(v)
}

// observeSlow records a nonzero value: bucket, sum, and the min/max CAS
// loops (which bar inlining — hence the split from observe).
func (h *hist) observeSlow(v uint64) {
	h.buckets[bits.Len64(v)].Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// histStripe is one stripe's bank of all histogram kinds. A stripe is
// far larger than a cache line, so cross-stripe false sharing is
// limited to the boundary lines; the [4]uint64 pad in hist keeps the
// hot zero-bucket words of adjacent kinds on separate lines.
type histStripe struct {
	h [numHistKinds]hist
}

// Histograms is a striped bank of log-bucketed histograms, sharing the
// stripe design of Counters: each session records into its own stripe,
// so the common case is an uncontended atomic add on private lines. A
// nil *Histograms yields disabled handles that cost one branch per
// recording site and read no clocks.
type Histograms struct {
	stripes [counterStripes]histStripe
	nextID  atomic.Uint32
}

// NewHistograms returns an empty histogram bank.
func NewHistograms() *Histograms {
	hs := &Histograms{}
	for i := range hs.stripes {
		for k := range hs.stripes[i].h {
			hs.stripes[i].h[k].min.Store(math.MaxUint64)
		}
	}
	return hs
}

// HistHandle is a per-session accessor bound to one stripe. Obtain via
// Histograms.Handle; hold it by value in the session and call Start/Done
// through a pointer (the sampling phase counter is session-local state,
// safe because sessions are single-goroutine by contract).
type HistHandle struct {
	s *histStripe
	// nEnq/nDeq hold one sampling phase per operation side. Separate
	// phases keep a lock-step enqueue/dequeue loop from aliasing
	// against the sample mask — with a shared counter each enqueue
	// would land on an odd phase and never be sampled. Scalar fields
	// (not a [2]uint32) keep StartEnq/DoneEnq inside the compiler's
	// inlining budget; indexed access pushes them over.
	nEnq, nDeq uint32
	// pendEnq/pendDeq batch zero-retry observations so the common
	// first-attempt-wins case costs a session-local increment instead
	// of an atomic add; the batch publishes on each sampled operation
	// (every 2^SampleShift per side) and on Flush (sessions call it
	// from Detach).
	pendEnq, pendDeq uint32
}

// Handle returns an accessor bound to a fresh stripe (round-robin). A
// nil receiver yields a disabled handle.
func (hs *Histograms) Handle() HistHandle {
	if hs == nil {
		return HistHandle{}
	}
	id := hs.nextID.Add(1) - 1
	// Offset the sampling phase per handle so concurrent sessions do not
	// all sample the same beat of a lock-step workload.
	return HistHandle{s: &hs.stripes[id%counterStripes], nEnq: id, nDeq: id}
}

// Enabled reports whether the handle records anything.
func (h *HistHandle) Enabled() bool { return h.s != nil }

// StartEnq begins one enqueue's timing: it returns the clock reading
// for sampled operations and the zero Time otherwise. Disabled handles
// never read the clock. Per-side methods (rather than a HistKind
// parameter) keep the hot path within the inlining budget.
func (h *HistHandle) StartEnq() time.Time {
	if h.s != nil {
		h.nEnq++
		if h.nEnq&sampleMask == sampleMask {
			return time.Now()
		}
	}
	return time.Time{}
}

// StartDeq is StartEnq for the dequeue side.
func (h *HistHandle) StartDeq() time.Time {
	if h.s != nil {
		h.nDeq++
		if h.nDeq&sampleMask == sampleMask {
			return time.Now()
		}
	}
	return time.Time{}
}

// DoneEnq completes one enqueue: the retry count is always recorded,
// the latency only when StartEnq sampled this operation (start
// nonzero). The fast path (zero retries, unsampled) is pure
// session-local integer work and inlines; everything else funnels
// through one outlined slow call. Whether this operation was sampled
// is re-derived from the phase counter (StartEnq incremented it and
// nothing else touches it mid-operation) because start.IsZero() is too
// expensive for the inlining budget. A disabled handle takes only the
// dead pendEnq increment: its phase counter is pinned at zero (StartEnq
// is nil-guarded), the saturated-mask test can never fire, and the
// retries path nil-checks inside the slow call — no atomics, no clock.
func (h *HistHandle) DoneEnq(start time.Time, retries int) {
	h.pendEnq++
	if retries != 0 || h.nEnq&sampleMask == sampleMask {
		h.doneSlowEnq(start, retries)
	}
}

// doneSlowEnq handles the uncommon enqueue cases: a retried operation
// (undo the fast path's zero-retry increment, record the true count),
// a full zero-retry batch, and a sampled latency. Deliberately above
// the inlining budget so the call in DoneEnq is charged as a plain
// call, keeping DoneEnq itself inlinable.
func (h *HistHandle) doneSlowEnq(start time.Time, retries int) {
	if h.s == nil {
		return
	}
	if retries != 0 {
		h.pendEnq--
		h.s.h[HistEnqRetries].observeSlow(uint64(retries))
	}
	if h.nEnq&sampleMask == sampleMask && h.pendEnq != 0 {
		h.s.h[HistEnqRetries].buckets[0].Add(uint64(h.pendEnq))
		h.pendEnq = 0
	}
	if !start.IsZero() {
		h.s.h[HistEnqLatency].observe(uint64(time.Since(start)))
	}
}

// DoneDeq is DoneEnq for the dequeue side.
func (h *HistHandle) DoneDeq(start time.Time, retries int) {
	h.pendDeq++
	if retries != 0 || h.nDeq&sampleMask == sampleMask {
		h.doneSlowDeq(start, retries)
	}
}

// doneSlowDeq is doneSlowEnq for the dequeue side.
func (h *HistHandle) doneSlowDeq(start time.Time, retries int) {
	if h.s == nil {
		return
	}
	if retries != 0 {
		h.pendDeq--
		h.s.h[HistDeqRetries].observeSlow(uint64(retries))
	}
	if h.nDeq&sampleMask == sampleMask && h.pendDeq != 0 {
		h.s.h[HistDeqRetries].buckets[0].Add(uint64(h.pendDeq))
		h.pendDeq = 0
	}
	if !start.IsZero() {
		h.s.h[HistDeqLatency].observe(uint64(time.Since(start)))
	}
}

// DoneEnqBatch completes one EnqueueBatch of n committed elements: the
// batch size and the retry count are recorded once per batch, and the
// sampled latency is attributed per element (elapsed/n) so the latency
// histogram stays in nanoseconds-per-element units comparable with
// single operations. Batch completion skips the pend-counter fast path
// — batches are rare relative to their element count, so the direct
// atomic adds are cheap per element.
func (h *HistHandle) DoneEnqBatch(start time.Time, retries, n int) {
	if h.s == nil {
		return
	}
	h.s.h[HistEnqBatch].observe(uint64(n))
	h.s.h[HistEnqRetries].observe(uint64(retries))
	if !start.IsZero() && n > 0 {
		h.s.h[HistEnqLatency].observe(uint64(time.Since(start)) / uint64(n))
	}
}

// DoneDeqBatch is DoneEnqBatch for the dequeue side.
func (h *HistHandle) DoneDeqBatch(start time.Time, retries, n int) {
	if h.s == nil {
		return
	}
	h.s.h[HistDeqBatch].observe(uint64(n))
	h.s.h[HistDeqRetries].observe(uint64(retries))
	if !start.IsZero() && n > 0 {
		h.s.h[HistDeqLatency].observe(uint64(time.Since(start)) / uint64(n))
	}
}

// ObserveEnqBatchSize records just the size of one EnqueueBatch call.
// The generic fallback layer uses it when the underlying session has no
// native batch operation: the looped single operations already account
// their own retries and latency, so only the batch-size distribution
// would otherwise go missing.
func (h *HistHandle) ObserveEnqBatchSize(n int) {
	if h.s == nil {
		return
	}
	h.s.h[HistEnqBatch].observe(uint64(n))
}

// ObserveDeqBatchSize is ObserveEnqBatchSize for DequeueBatch.
func (h *HistHandle) ObserveDeqBatchSize(n int) {
	if h.s == nil {
		return
	}
	h.s.h[HistDeqBatch].observe(uint64(n))
}

// Flush publishes batched zero-retry observations. Sessions call it on
// Detach; until then View may run behind by up to 2^SampleShift
// observations per side per live session (the batch drains on each
// sampled operation).
func (h *HistHandle) Flush() {
	if h.s == nil {
		return
	}
	if h.pendEnq != 0 {
		h.s.h[HistEnqRetries].buckets[0].Add(uint64(h.pendEnq))
		h.pendEnq = 0
	}
	if h.pendDeq != 0 {
		h.s.h[HistDeqRetries].buckets[0].Add(uint64(h.pendDeq))
		h.pendDeq = 0
	}
}

// Observe records one value directly (tests and non-timed recorders).
func (h *HistHandle) Observe(kind HistKind, v uint64) {
	if h.s == nil {
		return
	}
	h.s.h[kind].observe(v)
}

// HistView is a point-in-time merge of one histogram kind across all
// stripes.
type HistView struct {
	// Count is the number of recorded observations (for latency kinds,
	// sampled observations; see SampleShift).
	Count uint64
	// Sum is the sum of all observed values.
	Sum uint64
	// Min and Max are the exact observed extremes (0 when Count == 0).
	Min, Max uint64
	// Buckets[k] counts observations v with bits.Len64(v) == k.
	Buckets [HistBuckets]uint64
}

// View merges kind across all stripes. Nil-safe: a nil receiver returns
// the zero view.
func (hs *Histograms) View(kind HistKind) HistView {
	var v HistView
	if hs == nil {
		return v
	}
	v.Min = math.MaxUint64
	for i := range hs.stripes {
		h := &hs.stripes[i].h[kind]
		for k := range h.buckets {
			n := h.buckets[k].Load()
			v.Buckets[k] += n
			v.Count += n
		}
		v.Sum += h.sum.Load()
		if m := h.min.Load(); m < v.Min {
			v.Min = m
		}
		if m := h.max.Load(); m > v.Max {
			v.Max = m
		}
	}
	// The zero fast path in observe skips the min word entirely, so a
	// populated zero bucket implies the true minimum.
	if v.Buckets[0] > 0 || v.Count == 0 {
		v.Min = 0
	}
	return v
}

// Reset zeroes every histogram.
func (hs *Histograms) Reset() {
	if hs == nil {
		return
	}
	for i := range hs.stripes {
		for k := range hs.stripes[i].h {
			h := &hs.stripes[i].h[k]
			for b := range h.buckets {
				h.buckets[b].Store(0)
			}
			h.sum.Store(0)
			h.min.Store(math.MaxUint64)
			h.max.Store(0)
		}
	}
}

// Mean returns the average observed value, 0 when empty.
func (v HistView) Mean() float64 {
	if v.Count == 0 {
		return 0
	}
	return float64(v.Sum) / float64(v.Count)
}

// Quantile returns the q-quantile (q in [0,1]) by linear interpolation
// inside the containing power-of-two bucket, clamped to the exact
// observed Min/Max so the extreme quantiles cannot overshoot the data.
func (v HistView) Quantile(q float64) float64 {
	if v.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(v.Count)
	cum := 0.0
	est := float64(v.Max)
	for k, n := range v.Buckets {
		if n == 0 {
			continue
		}
		next := cum + float64(n)
		if rank <= next {
			lo, hi := 0.0, 1.0
			if k >= 1 {
				lo = float64(uint64(1) << (k - 1))
				hi = lo * 2
			}
			frac := 0.0
			if n > 0 {
				frac = (rank - cum) / float64(n)
			}
			est = lo + (hi-lo)*frac
			break
		}
		cum = next
	}
	if min := float64(v.Min); est < min {
		est = min
	}
	if max := float64(v.Max); est > max {
		est = max
	}
	return est
}
