package xsync

import (
	"math"
	"math/bits"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestHistogramBucketBoundaries: values at exactly 2^k land
// deterministically in bucket k+1 (bits.Len64(2^k) == k+1), and 2^k - 1
// in bucket k.
func TestHistogramBucketBoundaries(t *testing.T) {
	hs := NewHistograms()
	h := hs.Handle()
	for k := 0; k < 63; k++ {
		v := uint64(1) << k
		h.Observe(HistEnqRetries, v)
		h.Observe(HistEnqRetries, v-1)
	}
	view := hs.View(HistEnqRetries)
	// v = 2^k has bit length k+1; v-1 = 2^k - 1 has bit length k.
	for k := 0; k < 63; k++ {
		want := uint64(0)
		switch {
		case k == 0: // 2^0 - 1 = 0 lands in bucket 0, 1 in bucket 1
			want = 1
		default:
			// bucket k receives 2^(k-1) (len k) and 2^k - 1 (len k).
			want = 2
		}
		if got := view.Buckets[k]; got != want {
			t.Errorf("bucket %d = %d, want %d", k, got, want)
		}
	}
	if view.Count != 126 {
		t.Errorf("count = %d, want 126", view.Count)
	}
	if view.Min != 0 {
		t.Errorf("min = %d, want 0", view.Min)
	}
	if want := uint64(1) << 62; view.Max != want {
		t.Errorf("max = %d, want %d", view.Max, want)
	}
}

func TestHistogramExtremes(t *testing.T) {
	hs := NewHistograms()
	h := hs.Handle()
	h.Observe(HistDeqRetries, math.MaxUint64)
	if got := bits.Len64(math.MaxUint64); got != 64 {
		t.Fatalf("bits.Len64(MaxUint64) = %d", got)
	}
	v := hs.View(HistDeqRetries)
	if v.Buckets[64] != 1 || v.Max != math.MaxUint64 {
		t.Errorf("max-value observation misplaced: %+v", v)
	}
	if BucketUpper(64) != math.MaxUint64 {
		t.Errorf("BucketUpper(64) = %d", BucketUpper(64))
	}
	if BucketUpper(0) != 0 || BucketUpper(3) != 7 {
		t.Errorf("BucketUpper bounds wrong: %d %d", BucketUpper(0), BucketUpper(3))
	}
}

// TestHistogramConcurrent hammers all stripes from GOMAXPROCS goroutines
// and asserts exact totals: striping must lose nothing.
func TestHistogramConcurrent(t *testing.T) {
	hs := NewHistograms()
	workers := runtime.GOMAXPROCS(0) * 2
	const perWorker = 20000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := hs.Handle()
			for i := 0; i < perWorker; i++ {
				h.Observe(HistEnqRetries, uint64(i%17))
			}
		}(w)
	}
	wg.Wait()
	v := hs.View(HistEnqRetries)
	if want := uint64(workers * perWorker); v.Count != want {
		t.Fatalf("count = %d, want %d", v.Count, want)
	}
	var wantSum uint64
	for i := 0; i < perWorker; i++ {
		wantSum += uint64(i % 17)
	}
	wantSum *= uint64(workers)
	if v.Sum != wantSum {
		t.Fatalf("sum = %d, want %d", v.Sum, wantSum)
	}
	if v.Min != 0 || v.Max != 16 {
		t.Fatalf("min/max = %d/%d, want 0/16", v.Min, v.Max)
	}
}

// TestCountersConcurrentAllStripes is the same exact-totals drill for
// the counter bank: every stripe hit from GOMAXPROCS goroutines across
// several kinds, totals must match exactly.
func TestCountersConcurrentAllStripes(t *testing.T) {
	c := NewCounters()
	workers := runtime.GOMAXPROCS(0) * 2
	if workers < counterStripes {
		workers = counterStripes // force every stripe into play
	}
	const perWorker = 50000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := c.Handle()
			for i := 0; i < perWorker; i++ {
				h.Inc(OpCASAttempt)
				if i%3 == 0 {
					h.Inc(OpCASSuccess)
				}
				h.Add(OpFAA, 2)
			}
		}()
	}
	wg.Wait()
	if got, want := c.Total(OpCASAttempt), uint64(workers*perWorker); got != want {
		t.Errorf("cas-attempt = %d, want %d", got, want)
	}
	wantOK := uint64(workers) * uint64((perWorker+2)/3)
	if got := c.Total(OpCASSuccess); got != wantOK {
		t.Errorf("cas-success = %d, want %d", got, wantOK)
	}
	if got, want := c.Total(OpFAA), uint64(workers*perWorker*2); got != want {
		t.Errorf("faa = %d, want %d", got, want)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	hs := NewHistograms()
	h := hs.Handle()
	// 1000 observations of 100ns, 10 of 100000ns: p50 must sit near 100,
	// p999 near the tail bucket.
	for i := 0; i < 1000; i++ {
		h.Observe(HistEnqLatency, 100)
	}
	for i := 0; i < 10; i++ {
		h.Observe(HistEnqLatency, 100000)
	}
	v := hs.View(HistEnqLatency)
	p50 := v.Quantile(0.5)
	if p50 < 64 || p50 > 128 {
		t.Errorf("p50 = %g, want within bucket [64,128)", p50)
	}
	p999 := v.Quantile(0.999)
	if p999 < 65536 || p999 > 131072 {
		t.Errorf("p999 = %g, want within bucket [65536,131072)", p999)
	}
	// Clamp: quantiles can never overshoot the observed extremes.
	if q := v.Quantile(1); q > float64(v.Max) {
		t.Errorf("p100 = %g beyond max %d", q, v.Max)
	}
	if q := v.Quantile(0); q < float64(v.Min) {
		t.Errorf("p0 = %g below min %d", q, v.Min)
	}
}

func TestHistogramZero(t *testing.T) {
	var hs *Histograms // nil bank: everything must be a cheap no-op
	h := hs.Handle()
	if h.Enabled() {
		t.Fatal("nil bank produced an enabled handle")
	}
	if !h.StartEnq().IsZero() {
		t.Fatal("disabled handle read the clock")
	}
	h.DoneEnq(time.Time{}, 3)
	h.Observe(HistEnqRetries, 1)
	v := hs.View(HistEnqRetries)
	if v.Count != 0 || v.Quantile(0.5) != 0 || v.Mean() != 0 {
		t.Fatalf("nil view not zero: %+v", v)
	}
}

func TestHistogramSampling(t *testing.T) {
	hs := NewHistograms()
	h := hs.Handle()
	const ops = 1 << 12
	sampled := 0
	for i := 0; i < ops; i++ {
		start := h.StartEnq()
		if !start.IsZero() {
			sampled++
		}
		h.DoneEnq(start, 1)
	}
	if want := ops >> SampleShift; sampled != want {
		t.Errorf("sampled %d of %d ops, want %d", sampled, ops, want)
	}
	v := hs.View(HistEnqRetries)
	if v.Count != ops {
		t.Errorf("retries recorded %d, want every op (%d)", v.Count, ops)
	}
	lv := hs.View(HistEnqLatency)
	if lv.Count != uint64(ops>>SampleShift) {
		t.Errorf("latency recorded %d, want sampled count %d", lv.Count, ops>>SampleShift)
	}
}

func TestHistogramReset(t *testing.T) {
	hs := NewHistograms()
	h := hs.Handle()
	h.Observe(HistDeqLatency, 42)
	hs.Reset()
	v := hs.View(HistDeqLatency)
	if v.Count != 0 || v.Sum != 0 || v.Min != 0 || v.Max != 0 {
		t.Fatalf("reset left data: %+v", v)
	}
}
