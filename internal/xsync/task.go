package xsync

import "sync/atomic"

// TaskAnnounce is the Announce protocol specialized for *anonymous
// maintenance tasks* instead of victim-owned operations: a fixed array
// of cells through which any session can publish an opaque task word
// (nonzero) for whichever session next passes a help point to execute.
// The segmented queue uses it to move the close/finalize straggler
// drain off the dequeuer latency path — a dequeuer that reaches the
// finalize step announces the head segment's handle, and enqueuers
// drive the drain from their own post-operation path.
//
// The differences from Announce, and why this is a separate type rather
// than new phases on it:
//
//   - No victim. Nobody waits on the result, so there are no done
//     phases: the claimer that completes a task empties the cell
//     itself, and an incomplete run hands the cell straight back to
//     pending for the next helper. Extending AnnounceExec instead would
//     force every implementor of the victim protocol to grow methods it
//     cannot mean.
//   - Tasks are idempotent work descriptions, not linearizable
//     operations. Exactly-once does not matter (the executor re-checks
//     the queue state under the usual CAS protocol and no-ops when the
//     task is already done), so Publish deduplicates only best-effort:
//     two racing publishers of the same word may occupy two cells, and
//     the second claimer simply finds nothing to do.
//
// Cell life cycle (state word = seq<<annPhaseBits | phase, sharing the
// Announce encoding):
//
//	empty --CAS--> setup --Store--> pend
//	pend  --CAS--> run (claimed; exclusive)
//	run   --Store--> empty(seq+1)   (claimer completed the task)
//	run   --Store--> pend           (claimer's budget ran out)
//
// As with Announce, the sequence number bumps only when the cell
// empties, so a stale claim CAS can never land; and a claimer that dies
// inside run strands the cell (the chaos drills document the same
// limitation for helping generally). A stranded *pending* cell is
// harmless beyond occupying one of the slots: tasks describe work that
// some later claimer re-validates before acting.
const taskCells = 4

// Task cell phases (the Announce sequence/phase encoding is reused).
const (
	taskEmpty uint64 = iota
	taskSetup
	taskPend
	taskRun
)

// taskCell is one task cell, padded like annCell.
type taskCell struct {
	state atomic.Uint64
	val   atomic.Uint64
	_     [6]uint64
}

// TaskAnnounce is a queue's maintenance-task array. A nil *TaskAnnounce
// disables the mechanism (Publish and HelpOne are nil-safe).
type TaskAnnounce struct {
	cells [taskCells]taskCell
	// pending counts published-but-uncompleted cells; the helpers' fast
	// path is a single load of it.
	pending atomic.Int64
}

// NewTaskAnnounce returns an empty task array.
func NewTaskAnnounce() *TaskAnnounce { return &TaskAnnounce{} }

// Pending reports the number of currently announced tasks.
func (a *TaskAnnounce) Pending() int {
	if a == nil {
		return 0
	}
	return int(a.pending.Load())
}

// Publish announces task v (nonzero) unless an equal task already
// occupies a pending or running cell — the dedup is best-effort, see
// the type comment. Returns whether a cell was claimed; false also
// covers a full array, which callers treat like the dedup case (the
// work will be re-announced or done inline).
func (a *TaskAnnounce) Publish(v uint64) bool {
	if a == nil || v == 0 {
		return false
	}
	for i := range a.cells {
		c := &a.cells[i]
		ph := c.state.Load() & annPhaseMask
		if (ph == taskPend || ph == taskRun) && c.val.Load() == v {
			return false
		}
	}
	for i := range a.cells {
		c := &a.cells[i]
		st := c.state.Load()
		if st&annPhaseMask != taskEmpty {
			continue
		}
		seq := st >> annPhaseBits
		if !c.state.CompareAndSwap(st, annState(seq, taskSetup)) {
			continue
		}
		// The cell is exclusively ours between setup and pend.
		c.val.Store(v)
		c.state.Store(annState(seq, taskPend))
		a.pending.Add(1)
		return true
	}
	return false
}

// HelpOne claims one pending task and executes it through run, which
// reports whether the task is complete (needs no further help). A
// completed task empties its cell; an incomplete one goes back to
// pending for the next helper, so helping never trades one stall for
// another. Returns whether a task was completed. With nothing announced
// the cost is one atomic load.
func (a *TaskAnnounce) HelpOne(budget int, run func(v uint64, budget int) bool) bool {
	if a == nil || a.pending.Load() == 0 {
		return false
	}
	for i := range a.cells {
		c := &a.cells[i]
		st := c.state.Load()
		if st&annPhaseMask != taskPend {
			continue
		}
		seq := st >> annPhaseBits
		if !c.state.CompareAndSwap(st, annState(seq, taskRun)) {
			continue
		}
		v := c.val.Load()
		if run(v, budget) {
			c.state.Store(annState(seq+1, taskEmpty))
			a.pending.Add(-1)
			return true
		}
		c.state.Store(annState(seq, taskPend))
		return false
	}
	return false
}
