package xsync

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestBarrierReleasesAll(t *testing.T) {
	const parties = 8
	b := NewBarrier(parties)
	var before, after atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < parties; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			before.Add(1)
			b.Wait()
			after.Add(1)
		}()
	}
	wg.Wait()
	if before.Load() != parties || after.Load() != parties {
		t.Fatalf("before=%d after=%d", before.Load(), after.Load())
	}
}

// TestBarrierReusable: the same barrier synchronizes successive phases,
// and no party can cross phase k+1 before all crossed phase k.
func TestBarrierReusable(t *testing.T) {
	const parties = 4
	const phases = 50
	b := NewBarrier(parties)
	var phase atomic.Int32
	counts := make([]atomic.Int32, phases)
	var wg sync.WaitGroup
	for p := 0; p < parties; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ph := 0; ph < phases; ph++ {
				cur := phase.Load()
				if int32(ph) < cur-1 {
					t.Errorf("party lagging: at phase %d while global is %d", ph, cur)
				}
				counts[ph].Add(1)
				b.Wait()
				phase.Store(int32(ph + 1))
			}
		}()
	}
	wg.Wait()
	for ph := range counts {
		if counts[ph].Load() != parties {
			t.Fatalf("phase %d saw %d parties", ph, counts[ph].Load())
		}
	}
}

func TestBarrierSingleParty(t *testing.T) {
	b := NewBarrier(1)
	for i := 0; i < 10; i++ {
		b.Wait() // must never block
	}
}

func TestBarrierValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewBarrier(0) did not panic")
		}
	}()
	NewBarrier(0)
}

func TestBackoffGrowsAndResets(t *testing.T) {
	b := NewBackoff(2, 16)
	// Drive past the cap; must not hang or panic.
	for i := 0; i < 10; i++ {
		b.Fail()
	}
	b.Reset()
	b.Fail() // after reset the interval restarts small; just exercise it
}

func TestBackoffZeroValueYields(t *testing.T) {
	var b Backoff // disabled: every Fail is a bare yield
	for i := 0; i < 3; i++ {
		b.Fail()
	}
	b.Reset() // no-op, must not panic
}

func TestCountersBasic(t *testing.T) {
	c := NewCounters()
	h := c.Handle()
	h.Inc(OpEnqueue)
	h.Add(OpCASSuccess, 3)
	if c.Total(OpEnqueue) != 1 || c.Total(OpCASSuccess) != 3 {
		t.Fatalf("totals: %v", c.Snapshot())
	}
	if got := c.PerOp(OpCASSuccess); got != 3 {
		t.Fatalf("PerOp = %v, want 3", got)
	}
	c.Reset()
	if c.Total(OpCASSuccess) != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestCountersNilSafe(t *testing.T) {
	var c *Counters
	h := c.Handle()
	h.Inc(OpEnqueue) // must not panic
	h.Add(OpFAA, 5)
	if c.Total(OpFAA) != 0 {
		t.Fatal("nil counters returned nonzero total")
	}
	if c.PerOp(OpFAA) != 0 {
		t.Fatal("nil counters PerOp nonzero")
	}
	c.Reset() // must not panic
}

func TestCountersConcurrent(t *testing.T) {
	c := NewCounters()
	const goroutines = 16
	const per = 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := c.Handle()
			for i := 0; i < per; i++ {
				h.Inc(OpCASAttempt)
			}
		}()
	}
	wg.Wait()
	if got := c.Total(OpCASAttempt); got != goroutines*per {
		t.Fatalf("total = %d, want %d", got, goroutines*per)
	}
}

func TestPerOpZeroOps(t *testing.T) {
	c := NewCounters()
	c.Handle().Inc(OpCASSuccess)
	if c.PerOp(OpCASSuccess) != 0 {
		t.Fatal("PerOp with zero completed operations should be 0")
	}
}

func TestOpKindStrings(t *testing.T) {
	for k := OpKind(0); k < numOpKinds; k++ {
		if k.String() == "unknown" {
			t.Errorf("OpKind %d has no label", k)
		}
	}
	if OpKind(999).String() != "unknown" {
		t.Error("out-of-range OpKind should stringify to unknown")
	}
}
