package nbqueue_test

import (
	"errors"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nbqueue"
)

func TestDetachIdempotent(t *testing.T) {
	q, err := nbqueue.New[int]()
	if err != nil {
		t.Fatal(err)
	}
	s := q.Attach()
	s.Detach()
	s.Detach() // second Detach must be a silent no-op
}

func TestUseAfterDetachPanics(t *testing.T) {
	q, err := nbqueue.New[int]()
	if err != nil {
		t.Fatal(err)
	}
	s := q.Attach()
	s.Detach()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Enqueue after Detach did not panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "used after Detach") {
			t.Fatalf("panic = %v, want a 'used after Detach' message", r)
		}
	}()
	_ = s.Enqueue(1)
}

// TestRawSessionLifecycle: the word-level sessions of the algorithms with
// per-thread state carry the same contract — idempotent Detach, loud
// panic on use after Detach.
func TestRawSessionLifecycle(t *testing.T) {
	for _, algo := range []nbqueue.Algorithm{nbqueue.AlgorithmCAS, nbqueue.AlgorithmMSHazard} {
		q, err := nbqueue.NewRaw(nbqueue.WithAlgorithm(algo))
		if err != nil {
			t.Fatal(err)
		}
		s := q.Attach()
		if err := s.Enqueue(2); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if _, ok := s.Dequeue(); !ok {
			t.Fatalf("%s: dequeue failed", algo)
		}
		s.Detach()
		s.Detach()
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no use-after-Detach panic", algo)
				}
			}()
			_ = s.Enqueue(2)
		}()
	}
}

func TestAttachFuncDetachesOnPanic(t *testing.T) {
	q, err := nbqueue.New[int]()
	if err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("AttachFunc swallowed the worker panic")
			}
		}()
		_ = q.AttachFunc(func(s *nbqueue.Session[int]) error {
			panic("worker crashed")
		})
	}()
	// The panicked worker's session must have been detached: repeated
	// scavenges (which advance the orphan epoch) find nothing to reclaim.
	total := 0
	for i := 0; i < 4; i++ {
		total += q.ScavengeOrphans()
	}
	if total != 0 {
		t.Fatalf("AttachFunc leaked a session through a panic: scavenged %d records", total)
	}
}

func TestAttachFuncPropagatesError(t *testing.T) {
	q, err := nbqueue.New[string]()
	if err != nil {
		t.Fatal(err)
	}
	sentinel := errors.New("sentinel")
	if got := q.AttachFunc(func(s *nbqueue.Session[string]) error {
		if err := s.Enqueue("a"); err != nil {
			return err
		}
		return sentinel
	}); !errors.Is(got, sentinel) {
		t.Fatalf("AttachFunc = %v, want sentinel", got)
	}
}

// TestScavengeOrphansReclaimsAbandoned: a session dropped without Detach
// is reclaimed once its record has been stale across two epochs.
func TestScavengeOrphansReclaimsAbandoned(t *testing.T) {
	q, err := nbqueue.New[int]()
	if err != nil {
		t.Fatal(err)
	}
	s := q.Attach()
	if err := s.Enqueue(1); err != nil {
		t.Fatal(err)
	}
	// Abandon s (no Detach). Keep it referenced so the finalizer safety
	// net cannot race this test's scavenging.
	total := 0
	for i := 0; i < 4; i++ {
		total += q.ScavengeOrphans()
	}
	if total != 1 {
		t.Fatalf("scavenged %d records for one abandoned session, want 1", total)
	}
	if n := q.Orphans(); n != 0 {
		t.Fatalf("%d orphans remain after scavenging", n)
	}
	// The stranded value is still there for survivors.
	if v, ok := func() (int, bool) {
		s2 := q.Attach()
		defer s2.Detach()
		return s2.Dequeue()
	}(); !ok || v != 1 {
		t.Fatalf("stranded value lost: got (%d, %v)", v, ok)
	}
	runtime.KeepAlive(s)
}

// TestFinalizerCountsLeakedSessions: the GC safety net counts sessions
// collected without Detach and reports them to the leak handler.
func TestFinalizerCountsLeakedSessions(t *testing.T) {
	q, err := nbqueue.New[int]()
	if err != nil {
		t.Fatal(err)
	}
	algoCh := make(chan string, 1)
	nbqueue.SetLeakHandler(func(algorithm string) {
		select {
		case algoCh <- algorithm:
		default:
		}
	})
	defer nbqueue.SetLeakHandler(nil)

	func() { _ = q.Attach() }() // leak: session unreachable, never detached

	deadline := time.Now().Add(5 * time.Second)
	for q.LeakedSessions() == 0 && time.Now().Before(deadline) {
		runtime.GC()
		time.Sleep(5 * time.Millisecond)
	}
	if got := q.LeakedSessions(); got != 1 {
		t.Fatalf("LeakedSessions = %d, want 1", got)
	}
	select {
	case algorithm := <-algoCh:
		if algorithm != q.Algorithm() {
			t.Fatalf("leak handler got algorithm %q, want %q", algorithm, q.Algorithm())
		}
	case <-time.After(time.Second):
		t.Fatal("leak handler never called")
	}
	// A detached session must NOT count as a leak.
	s := q.Attach()
	s.Detach()
	runtime.GC()
	time.Sleep(20 * time.Millisecond)
	if got := q.LeakedSessions(); got != 1 {
		t.Fatalf("detached session was finalized as a leak: count %d", got)
	}
}

// TestRetryBudgetSurfacesErrContended: with a one-attempt budget and
// heavy cross-thread contention, some operations must shed load with
// ErrContended, the metric must count them, and the queue must stay fully
// functional afterwards.
//
// On a single CPU the bare operations are too fast for goroutines to
// overlap inside the LL/SC window, so the yield hook forces a scheduling
// point between atomic steps — two workers then routinely reserve the
// same slot and one of them loses its CAS and burns the budget.
func TestRetryBudgetSurfacesErrContended(t *testing.T) {
	m := nbqueue.NewMetrics()
	q, err := nbqueue.New[int](
		nbqueue.WithCapacity(4), nbqueue.WithRetryBudget(1), nbqueue.WithMetrics(m),
		nbqueue.WithYieldHook(runtime.Gosched))
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	const maxOps = 50000
	var contended atomic.Int64
	start := make(chan struct{})
	var ready, wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		ready.Add(1)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			_ = q.AttachFunc(func(s *nbqueue.Session[int]) error {
				ready.Done()
				<-start
				// Every worker both enqueues and dequeues so head and tail
				// slots are contested from all sides; stop once contention
				// has been observed anywhere.
				for i := 0; i < maxOps && contended.Load() == 0; i++ {
					if (w+i)%2 == 0 {
						if err := s.Enqueue(i); errors.Is(err, nbqueue.ErrContended) {
							contended.Add(1)
						}
					} else {
						if _, ok, err := s.TryDequeue(); !ok && errors.Is(err, nbqueue.ErrContended) {
							contended.Add(1)
						}
					}
				}
				return nil
			})
		}(w)
	}
	ready.Wait()
	close(start)
	wg.Wait()
	if contended.Load() == 0 {
		t.Fatal("no ErrContended under 8-way contention with budget 1")
	}
	if snap := m.Snapshot(); snap.Contended == 0 {
		t.Fatal("metrics did not count contended operations")
	}
	// Load shedding must not have corrupted anything: drain, then do a
	// clean round-trip.
	_ = q.AttachFunc(func(s *nbqueue.Session[int]) error {
		s.TryDrain(0)
		if err := s.Enqueue(42); err != nil {
			t.Errorf("post-contention enqueue: %v", err)
		}
		if v, ok := s.Dequeue(); !ok || v != 42 {
			t.Errorf("post-contention dequeue = (%d, %v)", v, ok)
		}
		return nil
	})
}
