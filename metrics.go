package nbqueue

import "nbqueue/internal/xsync"

// Metrics collects synchronization-operation counts from a queue created
// with WithMetrics. It answers the questions the paper's §6 argues about:
// how many CAS, FetchAndAdd and LL/SC operations each algorithm spends
// per enqueue/dequeue. Counting is striped and nearly free, but still
// adds a few atomic adds per operation — leave metrics off for production
// hot paths.
//
// A single Metrics must not be shared between queues (the per-operation
// ratios would blend).
type Metrics struct {
	c *xsync.Counters
}

// NewMetrics returns an empty metrics sink.
func NewMetrics() *Metrics { return &Metrics{c: xsync.NewCounters()} }

// counters hands the internal bank to the queue constructor.
func (m *Metrics) counters() *xsync.Counters {
	if m == nil {
		return nil
	}
	return m.c
}

// Snapshot is a point-in-time view of the counters.
type Snapshot struct {
	// Enqueues and Dequeues are completed operations (dequeues that
	// found the queue empty are not counted).
	Enqueues uint64
	Dequeues uint64
	// CASAttempts and CASSuccesses count compare-and-swap traffic.
	CASAttempts  uint64
	CASSuccesses uint64
	// FetchAndAdds counts atomic add traffic (Algorithm 2's reference
	// counting).
	FetchAndAdds uint64
	// LLs, SCAttempts and SCSuccesses count load-linked /
	// store-conditional traffic (real, emulated, or simulated).
	LLs         uint64
	SCAttempts  uint64
	SCSuccesses uint64
	// Contended counts operations abandoned with ErrContended because
	// their WithRetryBudget budget ran out — the load actually shed.
	Contended uint64
}

// Snapshot returns the current totals.
func (m *Metrics) Snapshot() Snapshot {
	return Snapshot{
		Enqueues:     m.c.Total(xsync.OpEnqueue),
		Dequeues:     m.c.Total(xsync.OpDequeue),
		CASAttempts:  m.c.Total(xsync.OpCASAttempt),
		CASSuccesses: m.c.Total(xsync.OpCASSuccess),
		FetchAndAdds: m.c.Total(xsync.OpFAA),
		LLs:          m.c.Total(xsync.OpLL),
		SCAttempts:   m.c.Total(xsync.OpSCAttempt),
		SCSuccesses:  m.c.Total(xsync.OpSCSuccess),
		Contended:    m.c.Total(xsync.OpContended),
	}
}

// Reset zeroes all counters.
func (m *Metrics) Reset() { m.c.Reset() }

// Ops returns the number of completed queue operations.
func (s Snapshot) Ops() uint64 { return s.Enqueues + s.Dequeues }

// CASPerOp returns successful CAS per completed operation, the figure of
// merit §6 uses to compare algorithm cost.
func (s Snapshot) CASPerOp() float64 {
	if s.Ops() == 0 {
		return 0
	}
	return float64(s.CASSuccesses) / float64(s.Ops())
}
