package nbqueue

import "nbqueue/internal/xsync"

// Metrics collects synchronization-operation counts and latency/retry
// distributions from a queue created with WithMetrics. The counters
// answer the questions the paper's §6 argues about (how many CAS,
// FetchAndAdd and LL/SC operations each algorithm spends per
// enqueue/dequeue); the histograms answer the production questions §6
// cannot: how long operations take under contention and how many retry
// iterations a CAS loop burns before succeeding or shedding.
//
// Counting is striped and nearly free; latency timing is sampled (one
// operation in 2^xsync.SampleShift per session reads the clock) so the
// enabled-metrics overhead stays within ~10% of the counter-only cost.
// With no Metrics attached the queues perform zero additional atomic
// operations and read no clocks.
//
// A single Metrics must not be shared between queues (the per-operation
// ratios would blend).
type Metrics struct {
	c *xsync.Counters
	h *xsync.Histograms
}

// NewMetrics returns an empty metrics sink.
func NewMetrics() *Metrics {
	return &Metrics{c: xsync.NewCounters(), h: xsync.NewHistograms()}
}

// counters hands the internal bank to the queue constructor.
func (m *Metrics) counters() *xsync.Counters {
	if m == nil {
		return nil
	}
	return m.c
}

// histograms hands the internal histogram bank to the queue constructor.
func (m *Metrics) histograms() *xsync.Histograms {
	if m == nil {
		return nil
	}
	return m.h
}

// Snapshot is a point-in-time view of the counters.
type Snapshot struct {
	// Enqueues and Dequeues are completed operations (dequeues that
	// found the queue empty are not counted).
	Enqueues uint64
	Dequeues uint64
	// CASAttempts and CASSuccesses count compare-and-swap traffic.
	CASAttempts  uint64
	CASSuccesses uint64
	// FetchAndAdds counts atomic add traffic (Algorithm 2's reference
	// counting).
	FetchAndAdds uint64
	// LLs, SCAttempts and SCSuccesses count load-linked /
	// store-conditional traffic (real, emulated, or simulated).
	LLs         uint64
	SCAttempts  uint64
	SCSuccesses uint64
	// Contended counts operations abandoned with ErrContended because
	// their WithRetryBudget budget ran out — the load actually shed.
	Contended uint64
	// DeadlineAborts counts operations aborted with ErrDeadline because
	// the session deadline passed mid-retry-loop.
	DeadlineAborts uint64
	// OverloadSheds counts enqueues refused with ErrOverloaded by
	// watermark admission control (WithWatermarks).
	OverloadSheds uint64
	// StarvationRescues counts operations completed on a starved
	// session's behalf by the WithStarvationBound helping protocol.
	StarvationRescues uint64
	// OrphansScavenged counts per-thread records reclaimed by
	// ScavengeOrphans (sessions presumed dead without Detach).
	OrphansScavenged uint64
	// LeakedSessions counts sessions garbage collected without Detach
	// (the finalizer safety net fired; always a caller bug).
	LeakedSessions uint64
	// SegmentAllocs, SegmentRecycles and SegmentRetires trace
	// AlgorithmSegmented's ring lifecycle: rings allocated fresh from the
	// pool, retired rings reset and relinked (the allocation-free steady
	// state), and drained rings handed to the hazard domain. Zero for
	// every other algorithm. A steady state where SegmentRecycles grows
	// while SegmentAllocs stays flat means the free list is absorbing
	// churn without allocating.
	SegmentAllocs   uint64
	SegmentRecycles uint64
	SegmentRetires  uint64
	// SegmentFrees counts prepared-but-never-linked segments returned
	// straight to the pool (append-race losers with no spare-pool room,
	// replenish backouts, scavenged append orphans).
	SegmentFrees uint64
	// SegmentSheds counts enqueues AlgorithmSegmented refused because
	// segment-count watermarks (WithSegmentWatermarks) or the memory
	// bound (WithMemoryBound) converted would-be growth into shedding.
	SegmentSheds uint64
	// SpareSegmentHits and SpareSegmentMisses trace the WithSpareSegments
	// pool: appends served by popping a pre-armed segment (no ring memory
	// touched on the admitted path) versus appends that found the pool
	// empty and fell back to inline allocation. A rising miss share under
	// load means the pool is undersized for the burst cadence.
	SpareSegmentHits   uint64
	SpareSegmentMisses uint64
	// FinalizeHelps counts closed segments finalized and unlinked by a
	// helping enqueuer from its post-operation path, rather than by a
	// dequeuer inline — the off-path finalization of the overload
	// hardening.
	FinalizeHelps uint64
}

// Snapshot returns the current totals.
func (m *Metrics) Snapshot() Snapshot {
	return Snapshot{
		Enqueues:           m.c.Total(xsync.OpEnqueue),
		Dequeues:           m.c.Total(xsync.OpDequeue),
		CASAttempts:        m.c.Total(xsync.OpCASAttempt),
		CASSuccesses:       m.c.Total(xsync.OpCASSuccess),
		FetchAndAdds:       m.c.Total(xsync.OpFAA),
		LLs:                m.c.Total(xsync.OpLL),
		SCAttempts:         m.c.Total(xsync.OpSCAttempt),
		SCSuccesses:        m.c.Total(xsync.OpSCSuccess),
		Contended:          m.c.Total(xsync.OpContended),
		DeadlineAborts:     m.c.Total(xsync.OpDeadline),
		OverloadSheds:      m.c.Total(xsync.OpOverload),
		StarvationRescues:  m.c.Total(xsync.OpRescue),
		OrphansScavenged:   m.c.Total(xsync.OpScavenge),
		LeakedSessions:     m.c.Total(xsync.OpLeak),
		SegmentAllocs:      m.c.Total(xsync.OpSegAlloc),
		SegmentRecycles:    m.c.Total(xsync.OpSegRecycle),
		SegmentRetires:     m.c.Total(xsync.OpSegRetire),
		SegmentFrees:       m.c.Total(xsync.OpSegFree),
		SegmentSheds:       m.c.Total(xsync.OpSegShed),
		SpareSegmentHits:   m.c.Total(xsync.OpSegSpareHit),
		SpareSegmentMisses: m.c.Total(xsync.OpSegSpareMiss),
		FinalizeHelps:      m.c.Total(xsync.OpSegFinalizeHelp),
	}
}

// Reset zeroes all counters and histograms.
func (m *Metrics) Reset() {
	m.c.Reset()
	m.h.Reset()
}

// Op selects the operation side of a histogram query.
type Op int

const (
	// Enqueue selects the enqueue-side histograms.
	Enqueue Op = iota
	// Dequeue selects the dequeue-side histograms.
	Dequeue
)

// Latencies returns the latency distribution of op in nanoseconds.
// Latency is recorded for completed operations and for operations shed
// with ErrContended; dequeues that merely observed an empty queue are
// not recorded. Observations are sampled — one operation in
// 2^xsync.SampleShift per session — so Count is the sample count, not
// the operation count; quantiles and the mean are unaffected. Batch
// operations attribute latency per element: a sampled n-element batch
// records elapsed/n once, keeping the distribution comparable between
// batched and single-op workloads.
func (m *Metrics) Latencies(op Op) HistogramView {
	kind := xsync.HistEnqLatency
	if op == Dequeue {
		kind = xsync.HistDeqLatency
	}
	return HistogramView{v: m.histograms().View(kind)}
}

// Retries returns the distribution of failed retry-loop iterations per
// operation of op (0 = the operation won on its first attempt). Every
// completed or shed operation is recorded. A batch operation records
// its retry total once for the whole batch.
func (m *Metrics) Retries(op Op) HistogramView {
	kind := xsync.HistEnqRetries
	if op == Dequeue {
		kind = xsync.HistDeqRetries
	}
	return HistogramView{v: m.histograms().View(kind)}
}

// BatchSizes returns the distribution of batch sizes observed by
// EnqueueBatch (op == Enqueue) or DequeueBatch (op == Dequeue): one
// observation per batch call, recording for enqueues the number of
// elements that took effect and for dequeues the number drained
// (including 0 for an empty result). Single-element Enqueue/Dequeue
// calls do not appear here, so Count is the number of batch calls and
// Mean the effective batch size — the amortization factor actually
// achieved over the single head/tail RMW each batch spends.
func (m *Metrics) BatchSizes(op Op) HistogramView {
	kind := xsync.HistEnqBatch
	if op == Dequeue {
		kind = xsync.HistDeqBatch
	}
	return HistogramView{v: m.histograms().View(kind)}
}

// HistogramView is a point-in-time view of one recorded distribution.
// Values land in power-of-two buckets, so quantiles are exact to within
// a factor of two and interpolated inside the containing bucket, clamped
// to the exact observed extremes.
type HistogramView struct {
	v xsync.HistView
}

// Count returns the number of recorded observations.
func (h HistogramView) Count() uint64 { return h.v.Count }

// Sum returns the sum of all observations.
func (h HistogramView) Sum() uint64 { return h.v.Sum }

// Min returns the smallest observation (0 when empty).
func (h HistogramView) Min() uint64 { return h.v.Min }

// Max returns the largest observation.
func (h HistogramView) Max() uint64 { return h.v.Max }

// Mean returns the average observation, 0 when empty.
func (h HistogramView) Mean() float64 { return h.v.Mean() }

// Quantile returns the q-quantile (q in [0,1]) by bucket interpolation.
func (h HistogramView) Quantile(q float64) float64 { return h.v.Quantile(q) }

// P50, P90, P99 and P999 are the soak-report quantiles.
func (h HistogramView) P50() float64  { return h.v.Quantile(0.50) }
func (h HistogramView) P90() float64  { return h.v.Quantile(0.90) }
func (h HistogramView) P99() float64  { return h.v.Quantile(0.99) }
func (h HistogramView) P999() float64 { return h.v.Quantile(0.999) }

// Ops returns the number of completed queue operations.
func (s Snapshot) Ops() uint64 { return s.Enqueues + s.Dequeues }

// Depth is the occupancy gauge derivable from the counters: completed
// enqueues minus completed dequeues. Exact at quiescence; under
// concurrency it can transiently disagree with the queue's own Len by
// the number of in-flight operations.
func (s Snapshot) Depth() uint64 {
	if s.Dequeues > s.Enqueues {
		return 0
	}
	return s.Enqueues - s.Dequeues
}

// CASPerOp returns successful CAS per completed operation, the figure of
// merit §6 uses to compare algorithm cost.
func (s Snapshot) CASPerOp() float64 {
	if s.Ops() == 0 {
		return 0
	}
	return float64(s.CASSuccesses) / float64(s.Ops())
}

// CASFailureRate returns the fraction of CAS attempts that failed —
// the direct contention signal. 0 when no CAS was attempted.
func (s Snapshot) CASFailureRate() float64 {
	if s.CASAttempts == 0 {
		return 0
	}
	return float64(s.CASAttempts-s.CASSuccesses) / float64(s.CASAttempts)
}

// SCFailureRate returns the fraction of store-conditional attempts that
// failed. 0 when no SC was attempted.
func (s Snapshot) SCFailureRate() float64 {
	if s.SCAttempts == 0 {
		return 0
	}
	return float64(s.SCAttempts-s.SCSuccesses) / float64(s.SCAttempts)
}

// Delta returns the change from prev to s, field by field — the rate
// view a periodic reporter wants: take a Snapshot each tick and Delta
// against the previous tick to get per-interval counts. Counters are
// monotonic, so all fields of the result are non-negative when prev was
// taken from the same Metrics earlier in time (a Reset in between
// breaks monotonicity; Delta saturates at 0 rather than wrapping).
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	sub := func(a, b uint64) uint64 {
		if a < b {
			return 0
		}
		return a - b
	}
	return Snapshot{
		Enqueues:           sub(s.Enqueues, prev.Enqueues),
		Dequeues:           sub(s.Dequeues, prev.Dequeues),
		CASAttempts:        sub(s.CASAttempts, prev.CASAttempts),
		CASSuccesses:       sub(s.CASSuccesses, prev.CASSuccesses),
		FetchAndAdds:       sub(s.FetchAndAdds, prev.FetchAndAdds),
		LLs:                sub(s.LLs, prev.LLs),
		SCAttempts:         sub(s.SCAttempts, prev.SCAttempts),
		SCSuccesses:        sub(s.SCSuccesses, prev.SCSuccesses),
		Contended:          sub(s.Contended, prev.Contended),
		DeadlineAborts:     sub(s.DeadlineAborts, prev.DeadlineAborts),
		OverloadSheds:      sub(s.OverloadSheds, prev.OverloadSheds),
		StarvationRescues:  sub(s.StarvationRescues, prev.StarvationRescues),
		OrphansScavenged:   sub(s.OrphansScavenged, prev.OrphansScavenged),
		LeakedSessions:     sub(s.LeakedSessions, prev.LeakedSessions),
		SegmentAllocs:      sub(s.SegmentAllocs, prev.SegmentAllocs),
		SegmentRecycles:    sub(s.SegmentRecycles, prev.SegmentRecycles),
		SegmentRetires:     sub(s.SegmentRetires, prev.SegmentRetires),
		SegmentFrees:       sub(s.SegmentFrees, prev.SegmentFrees),
		SegmentSheds:       sub(s.SegmentSheds, prev.SegmentSheds),
		SpareSegmentHits:   sub(s.SpareSegmentHits, prev.SpareSegmentHits),
		SpareSegmentMisses: sub(s.SpareSegmentMisses, prev.SpareSegmentMisses),
		FinalizeHelps:      sub(s.FinalizeHelps, prev.FinalizeHelps),
	}
}
