package nbqueue_test

import (
	"testing"

	"nbqueue/internal/arena"
	"nbqueue/internal/bench"
	"nbqueue/internal/xsync"
)

// BenchmarkInstrumentation measures the single-pair cost of each
// instrumentation tier on the evq-cas queue: none (nil banks — must
// match the uninstrumented baseline bit for bit, zero extra atomics),
// counters only, and full (counters + sampled latency/retry
// histograms). EXPERIMENTS.md records the T-instr acceptance numbers
// from this benchmark.
func BenchmarkInstrumentation(b *testing.B) {
	for _, mode := range []string{"nil", "counters", "full"} {
		b.Run(mode, func(b *testing.B) {
			var ctrs *xsync.Counters
			var hists *xsync.Histograms
			switch mode {
			case "counters":
				ctrs = xsync.NewCounters()
			case "full":
				ctrs = xsync.NewCounters()
				hists = xsync.NewHistograms()
			}
			algo, err := bench.Lookup(bench.KeyEvqCAS)
			if err != nil {
				b.Fatal(err)
			}
			q := algo.New(bench.Config{Capacity: 1024, Counters: ctrs, Hists: hists})
			a := arena.New(1024 + 16)
			s := q.Attach()
			defer s.Detach()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h := a.Alloc()
				if err := s.Enqueue(h); err != nil {
					b.Fatal(err)
				}
				if got, ok := s.Dequeue(); ok {
					a.Free(got)
				} else {
					b.Fatal("empty")
				}
			}
		})
	}
}
