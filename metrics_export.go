package nbqueue

import (
	"io"
	"net/http"

	"nbqueue/internal/expose"
)

// Exporter renders a Metrics sink for scraping: Prometheus text
// exposition over HTTP (mount it at /metrics) and expvar JSON at
// /debug/vars. The exporter reads the live banks, so one constructed
// early keeps serving current totals with no further wiring.
//
//	m := nbqueue.NewMetrics()
//	q, _ := nbqueue.New[int](nbqueue.WithMetrics(m))
//	e := nbqueue.NewExporter(m, map[string]string{"algorithm": string(q.Algorithm())})
//	e.AddGauge("depth", "Current queue occupancy.", func() float64 {
//		n, _ := q.Len()
//		return float64(n)
//	})
//	http.Handle("/metrics", e)
type Exporter struct {
	col expose.Collector
}

// NewExporter returns an exporter for m. labels are constant labels
// stamped on every series (conventionally {"algorithm": ...}); nil is
// fine.
func NewExporter(m *Metrics, labels map[string]string) *Exporter {
	return &Exporter{col: expose.Collector{
		Labels:   labels,
		Counters: m.counters(),
		Hists:    m.histograms(),
	}}
}

// Collector returns the exporter's underlying collector so the
// module's own commands (fifojobd) can merge application-level series
// — extra counters, gauges, build info — into the same exposition.
// The pointer aliases the exporter's state; callers extend it once at
// startup, not per scrape.
func (e *Exporter) Collector() *expose.Collector { return &e.col }

// AddGauge registers an instantaneous value sampled at scrape time.
// value must be safe for concurrent use.
func (e *Exporter) AddGauge(name, help string, value func() float64) {
	e.col.Gauges = append(e.col.Gauges, expose.Gauge{Name: name, Help: help, Value: value})
}

// WritePrometheus writes all series in the Prometheus text exposition
// format (version 0.0.4).
func (e *Exporter) WritePrometheus(w io.Writer) error {
	return e.col.WritePrometheus(w)
}

// ServeHTTP implements http.Handler, serving the text exposition.
func (e *Exporter) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	e.col.Handler().ServeHTTP(w, r)
}

// PublishExpvar exposes the exporter's totals under name in the
// process-wide expvar registry (GET /debug/vars). Unlike
// expvar.Publish, republishing the same name rebinds it instead of
// panicking, so tests and restarted components can call it freely.
func (e *Exporter) PublishExpvar(name string) {
	e.col.PublishExpvar(name)
}
