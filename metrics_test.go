package nbqueue_test

import (
	"errors"
	"expvar"
	"net/http/httptest"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nbqueue"
)

func TestFailureRates(t *testing.T) {
	// Zero-ops edge: a fresh snapshot must report 0, not NaN.
	var zero nbqueue.Snapshot
	if r := zero.CASFailureRate(); r != 0 {
		t.Errorf("zero-ops CASFailureRate = %g, want 0", r)
	}
	if r := zero.SCFailureRate(); r != 0 {
		t.Errorf("zero-ops SCFailureRate = %g, want 0", r)
	}
	// All-failed edge: attempts with no successes is rate 1.
	all := nbqueue.Snapshot{CASAttempts: 10, SCAttempts: 4}
	if r := all.CASFailureRate(); r != 1 {
		t.Errorf("all-failed CASFailureRate = %g, want 1", r)
	}
	if r := all.SCFailureRate(); r != 1 {
		t.Errorf("all-failed SCFailureRate = %g, want 1", r)
	}
	// Mixed: 3 of 4 SC attempts succeeded.
	mixed := nbqueue.Snapshot{CASAttempts: 8, CASSuccesses: 6, SCAttempts: 4, SCSuccesses: 3}
	if r := mixed.CASFailureRate(); r != 0.25 {
		t.Errorf("CASFailureRate = %g, want 0.25", r)
	}
	if r := mixed.SCFailureRate(); r != 0.25 {
		t.Errorf("SCFailureRate = %g, want 0.25", r)
	}
}

func TestSnapshotDelta(t *testing.T) {
	prev := nbqueue.Snapshot{Enqueues: 10, Dequeues: 4, CASAttempts: 30}
	cur := nbqueue.Snapshot{Enqueues: 25, Dequeues: 24, CASAttempts: 90}
	d := cur.Delta(prev)
	if d.Enqueues != 15 || d.Dequeues != 20 || d.CASAttempts != 60 {
		t.Errorf("delta = %+v", d)
	}
	// A Reset between snapshots must saturate at 0, not wrap.
	d = prev.Delta(cur)
	if d.Enqueues != 0 || d.Dequeues != 0 {
		t.Errorf("reversed delta wrapped: %+v", d)
	}
}

func TestSnapshotDepthGauge(t *testing.T) {
	s := nbqueue.Snapshot{Enqueues: 7, Dequeues: 3}
	if s.Depth() != 4 {
		t.Errorf("depth = %d, want 4", s.Depth())
	}
	s = nbqueue.Snapshot{Enqueues: 1, Dequeues: 2} // mid-flight skew
	if s.Depth() != 0 {
		t.Errorf("skewed depth = %d, want 0", s.Depth())
	}
}

// TestMetricsHistograms: real operations populate the latency and retry
// views exposed by Latencies/Retries.
func TestMetricsHistograms(t *testing.T) {
	for _, algo := range []nbqueue.Algorithm{
		nbqueue.AlgorithmLLSC, nbqueue.AlgorithmCAS,
		nbqueue.AlgorithmMSHazard, nbqueue.AlgorithmMSHazardSorted,
	} {
		t.Run(string(algo), func(t *testing.T) {
			m := nbqueue.NewMetrics()
			q, err := nbqueue.New[int](nbqueue.WithAlgorithm(algo), nbqueue.WithMetrics(m))
			if err != nil {
				t.Fatal(err)
			}
			const ops = 4096
			err = q.AttachFunc(func(s *nbqueue.Session[int]) error {
				for i := 0; i < ops; i++ {
					if err := s.Enqueue(i); err != nil {
						return err
					}
					if _, ok := s.Dequeue(); !ok {
						t.Fatal("dequeue empty")
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			retries := m.Retries(nbqueue.Enqueue)
			if retries.Count() != ops {
				t.Errorf("enqueue retries count = %d, want %d (every op)", retries.Count(), ops)
			}
			// Uncontended single-thread ops win on the first attempt.
			if retries.Max() != 0 {
				t.Errorf("uncontended retries max = %d, want 0", retries.Max())
			}
			lat := m.Latencies(nbqueue.Enqueue)
			if lat.Count() == 0 {
				t.Fatal("no sampled enqueue latencies recorded")
			}
			if lat.Count() >= ops {
				t.Errorf("latency count %d not sampled (ops %d)", lat.Count(), ops)
			}
			if lat.Min() == 0 && lat.Max() == 0 {
				t.Error("latency observations all zero")
			}
			if p99, p50 := lat.P99(), lat.P50(); p99 < p50 {
				t.Errorf("p99 %g < p50 %g", p99, p50)
			}
			if mean := lat.Mean(); mean <= 0 {
				t.Errorf("latency mean = %g", mean)
			}
			dlat := m.Latencies(nbqueue.Dequeue)
			if dlat.Count() == 0 {
				t.Error("no sampled dequeue latencies recorded")
			}
			if dret := m.Retries(nbqueue.Dequeue); dret.Count() != ops {
				t.Errorf("dequeue retries count = %d, want %d", dret.Count(), ops)
			}
			// Reset must clear histograms along with counters.
			m.Reset()
			if n := m.Latencies(nbqueue.Enqueue).Count(); n != 0 {
				t.Errorf("reset left %d latency observations", n)
			}
		})
	}
}

// TestMetricsNilQueueStillWorks: queues without metrics must accept the
// full op mix (the nil-handle path) — guards the compiled-out branch.
func TestMetricsNilHistogramPath(t *testing.T) {
	q, err := nbqueue.New[int]()
	if err != nil {
		t.Fatal(err)
	}
	_ = q.AttachFunc(func(s *nbqueue.Session[int]) error {
		for i := 0; i < 100; i++ {
			if err := s.Enqueue(i); err != nil {
				t.Fatal(err)
			}
			if _, ok := s.Dequeue(); !ok {
				t.Fatal("empty")
			}
		}
		return nil
	})
}

// TestSnapshotLifecycleCounters: one snapshot tells the whole story —
// scavenged orphans and leaked sessions appear in Metrics.Snapshot.
func TestSnapshotLifecycleCounters(t *testing.T) {
	m := nbqueue.NewMetrics()
	q, err := nbqueue.New[int](nbqueue.WithMetrics(m))
	if err != nil {
		t.Fatal(err)
	}
	var events []nbqueue.Event
	var mu sync.Mutex

	// Abandon a session, then scavenge it.
	s := q.Attach()
	if err := s.Enqueue(1); err != nil {
		t.Fatal(err)
	}
	total := 0
	for i := 0; i < 4; i++ {
		total += q.ScavengeOrphans()
	}
	runtime.KeepAlive(s)
	if total != 1 {
		t.Fatalf("scavenged %d, want 1", total)
	}
	if snap := m.Snapshot(); snap.OrphansScavenged != 1 {
		t.Fatalf("Snapshot.OrphansScavenged = %d, want 1", snap.OrphansScavenged)
	}

	// Leak a session; the finalizer must fold the leak into the snapshot.
	// Fresh Metrics: the scavenged-but-never-Detached session above will
	// itself be finalized as a leak eventually, so m's leak count is not
	// stable from here on.
	lm := nbqueue.NewMetrics()
	mq, err := nbqueue.New[int](nbqueue.WithMetrics(lm), nbqueue.WithEventHook(func(e nbqueue.Event) {
		mu.Lock()
		events = append(events, e)
		mu.Unlock()
	}))
	if err != nil {
		t.Fatal(err)
	}
	_ = mq
	func() { _ = mq.Attach() }()
	deadline := time.Now().Add(5 * time.Second)
	for mq.LeakedSessions() == 0 && time.Now().Before(deadline) {
		runtime.GC()
		time.Sleep(5 * time.Millisecond)
	}
	if mq.LeakedSessions() != 1 {
		t.Fatal("leak never finalized")
	}
	if snap := lm.Snapshot(); snap.LeakedSessions != 1 {
		t.Fatalf("Snapshot.LeakedSessions = %d, want 1", snap.LeakedSessions)
	}
	mu.Lock()
	defer mu.Unlock()
	found := false
	for _, e := range events {
		if e.Kind == nbqueue.EventSessionLeaked && e.Algorithm == mq.Algorithm() {
			found = true
		}
	}
	if !found {
		t.Fatalf("no EventSessionLeaked delivered; events: %v", events)
	}
}

// TestEventHookScavenge: ScavengeOrphans delivers EventOrphanScavenged
// with the reclaimed count.
func TestEventHookScavenge(t *testing.T) {
	var got atomic.Pointer[nbqueue.Event]
	q, err := nbqueue.New[int](nbqueue.WithEventHook(func(e nbqueue.Event) {
		if e.Kind == nbqueue.EventOrphanScavenged {
			got.Store(&e)
		}
	}))
	if err != nil {
		t.Fatal(err)
	}
	s := q.Attach()
	_ = s.Enqueue(1)
	for i := 0; i < 4; i++ {
		q.ScavengeOrphans()
	}
	runtime.KeepAlive(s)
	e := got.Load()
	if e == nil {
		t.Fatal("no EventOrphanScavenged delivered")
	}
	if e.N != 1 || e.Algorithm != q.Algorithm() {
		t.Fatalf("event = %+v", *e)
	}
}

// TestEventHookContention: shed operations deliver contention events;
// the plain Dequeue path reports the otherwise-invisible budget
// exhaustion as EventRetryBudgetExhausted.
func TestEventHookContention(t *testing.T) {
	var sheds, exhausted atomic.Int64
	q, err := nbqueue.New[int](
		nbqueue.WithCapacity(4), nbqueue.WithRetryBudget(1),
		nbqueue.WithYieldHook(runtime.Gosched),
		nbqueue.WithEventHook(func(e nbqueue.Event) {
			switch e.Kind {
			case nbqueue.EventContentionShed:
				sheds.Add(1)
			case nbqueue.EventRetryBudgetExhausted:
				exhausted.Add(1)
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	start := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			_ = q.AttachFunc(func(s *nbqueue.Session[int]) error {
				<-start
				for i := 0; i < 50000 && sheds.Load()+exhausted.Load() == 0; i++ {
					switch (w + i) % 3 {
					case 0:
						if err := s.Enqueue(i); err != nil && !errors.Is(err, nbqueue.ErrFull) &&
							!errors.Is(err, nbqueue.ErrContended) {
							t.Error(err)
							return nil
						}
					case 1:
						s.Dequeue() // folds exhaustion; hook must still see it
					default:
						s.TryDequeue()
					}
				}
				return nil
			})
		}(w)
	}
	close(start)
	wg.Wait()
	if sheds.Load()+exhausted.Load() == 0 {
		t.Fatal("no contention events under 8-way contention with budget 1")
	}
}

func TestQueueLenGauge(t *testing.T) {
	q, err := nbqueue.New[int](nbqueue.WithAlgorithm(nbqueue.AlgorithmCAS))
	if err != nil {
		t.Fatal(err)
	}
	if n, ok := q.Len(); !ok || n != 0 {
		t.Fatalf("empty Len = (%d, %v), want (0, true)", n, ok)
	}
	_ = q.AttachFunc(func(s *nbqueue.Session[int]) error {
		for i := 0; i < 5; i++ {
			if err := s.Enqueue(i); err != nil {
				t.Fatal(err)
			}
		}
		return nil
	})
	if n, ok := q.Len(); !ok || n != 5 {
		t.Fatalf("Len = (%d, %v), want (5, true)", n, ok)
	}
}

// TestExporter: the public export path serves live totals with the
// queue's algorithm label and a depth gauge.
func TestExporter(t *testing.T) {
	m := nbqueue.NewMetrics()
	q, err := nbqueue.New[int](nbqueue.WithMetrics(m))
	if err != nil {
		t.Fatal(err)
	}
	_ = q.AttachFunc(func(s *nbqueue.Session[int]) error {
		for i := 0; i < 64; i++ {
			if err := s.Enqueue(i); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 60; i++ {
			if _, ok := s.Dequeue(); !ok {
				t.Fatal("empty")
			}
		}
		return nil
	})
	e := nbqueue.NewExporter(m, map[string]string{"algorithm": string(q.Algorithm())})
	e.AddGauge("depth", "Current queue occupancy.", func() float64 {
		n, _ := q.Len()
		return float64(n)
	})
	rr := httptest.NewRecorder()
	e.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	body := rr.Body.String()
	for _, want := range []string{
		"# TYPE nbq_enqueues_total counter",
		`nbq_enqueues_total{algorithm="` + string(q.Algorithm()) + `"} 64`,
		`nbq_dequeues_total{algorithm="` + string(q.Algorithm()) + `"} 60`,
		`nbq_depth{algorithm="` + string(q.Algorithm()) + `"} 4`,
		"# TYPE nbq_enqueue_retries histogram",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q\n%s", want, body)
		}
	}
	e.PublishExpvar("nbq_test_exporter")
	e.PublishExpvar("nbq_test_exporter") // must not panic
	if expvar.Get("nbq_test_exporter") == nil {
		t.Fatal("expvar not published")
	}
}

// TestSnapshotDeltaAllFields walks every Snapshot field by reflection:
// a field added to Snapshot but forgotten in Delta would subtract to
// the raw current value instead of the difference and fail here.
func TestSnapshotDeltaAllFields(t *testing.T) {
	var prev, cur nbqueue.Snapshot
	pv := reflect.ValueOf(&prev).Elem()
	cv := reflect.ValueOf(&cur).Elem()
	for i := 0; i < pv.NumField(); i++ {
		pv.Field(i).SetUint(uint64(i + 1))
		cv.Field(i).SetUint(uint64(3 * (i + 1)))
	}
	dv := reflect.ValueOf(cur.Delta(prev))
	for i := 0; i < dv.NumField(); i++ {
		if got, want := dv.Field(i).Uint(), uint64(2*(i+1)); got != want {
			t.Errorf("Delta dropped field %s: got %d, want %d",
				dv.Type().Field(i).Name, got, want)
		}
	}
	// And the saturating direction, field by field.
	dv = reflect.ValueOf(prev.Delta(cur))
	for i := 0; i < dv.NumField(); i++ {
		if got := dv.Field(i).Uint(); got != 0 {
			t.Errorf("reversed Delta wrapped on field %s: got %d",
				dv.Type().Field(i).Name, got)
		}
	}
}
