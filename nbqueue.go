// Package nbqueue provides non-blocking concurrent FIFO queues built on
// single-word atomic primitives, reproducing Claude Evequoz,
// "Non-Blocking Concurrent FIFO Queues With Single Word Synchronization
// Primitives" (ICPP 2008), together with every baseline the paper
// measures.
//
// The two core algorithms are bounded circular-array queues:
//
//   - AlgorithmLLSC — the paper's Algorithm 1, written against
//     load-linked/store-conditional (emulated here from CAS with version
//     tags). Population-oblivious: no per-thread state at all.
//   - AlgorithmCAS — the paper's Algorithm 2, pure single-word CAS plus
//     FetchAndAdd. Threads reserve array slots by swapping in a tagged
//     reference to a registered, reference-counted LLSCvar record.
//
// Baselines: Michael–Scott link-based queues with hazard-pointer
// reclamation (sorted and unsorted scans), the Doherty-style CAS-simulated
// LL/SC variant, the Shann et al. counted-slot array queue, the
// Tsigas–Zhang two-null array queue, a two-lock queue, and a buffered Go
// channel.
//
// # Usage
//
// The generic Queue[T] maps arbitrary payloads onto the word-sized values
// the algorithms move. Each goroutine attaches a Session before operating
// and detaches when done (some algorithms keep per-thread registration
// state; for the others Attach is nearly free):
//
//	q, err := nbqueue.New[string](nbqueue.WithCapacity(1024))
//	...
//	s := q.Attach()
//	defer s.Detach()
//	if err := s.Enqueue("job-17"); err != nil { ... }
//	if v, ok := s.Dequeue(); ok { ... }
//
// All queues are multi-producer multi-consumer and lock-free (except the
// explicitly blocking two-lock and channel baselines). Enqueue on a full
// bounded queue fails fast with ErrFull; Dequeue on an empty queue
// returns ok=false. Neither ever blocks.
package nbqueue

import (
	"fmt"

	"nbqueue/internal/arena"
	"nbqueue/internal/bench"
	"nbqueue/internal/queue"
	"nbqueue/internal/xsync"
)

// Algorithm selects a queue implementation.
type Algorithm string

// The available algorithms. AlgorithmLLSC and AlgorithmCAS are the
// paper's contributions; the rest are the measured baselines and
// extensions.
const (
	// AlgorithmLLSC is the paper's Algorithm 1 (Figure 3): circular
	// array over LL/SC. Population-oblivious, space O(capacity).
	AlgorithmLLSC Algorithm = bench.KeyEvqLLSC
	// AlgorithmCAS is the paper's Algorithm 2 (Figure 5): circular array
	// over CAS with simulated LL via registered LLSCvar records. This is
	// the most portable choice and the package default.
	AlgorithmCAS Algorithm = bench.KeyEvqCAS
	// AlgorithmMSHazard is the Michael–Scott lock-free linked queue with
	// hazard-pointer reclamation, unsorted scans.
	AlgorithmMSHazard Algorithm = bench.KeyMSHP
	// AlgorithmMSHazardSorted is the same with sorted scans (faster at
	// high thread counts).
	AlgorithmMSHazardSorted Algorithm = bench.KeyMSHPSorted
	// AlgorithmMSDoherty is the Michael–Scott queue over Doherty-style
	// CAS-simulated LL/SC variables (the paper's slowest baseline).
	AlgorithmMSDoherty Algorithm = bench.KeyMSDoherty
	// AlgorithmShann is the Shann–Huang–Chen counted-slot array queue,
	// requiring a double-width (value+counter) CAS; payload values are
	// limited to 32 bits of handle space.
	AlgorithmShann Algorithm = bench.KeyShann
	// AlgorithmTsigasZhang is the Tsigas–Zhang two-null array queue.
	AlgorithmTsigasZhang Algorithm = bench.KeyTsigasZhang
	// AlgorithmTwoLock is the blocking Michael–Scott two-lock queue.
	AlgorithmTwoLock Algorithm = bench.KeyTwoLock
	// AlgorithmChannel adapts a buffered Go channel.
	AlgorithmChannel Algorithm = bench.KeyChan
)

// Errors returned by queue operations.
var (
	// ErrFull reports a bounded queue at capacity.
	ErrFull = queue.ErrFull
)

// config collects option state.
type config struct {
	algorithm  Algorithm
	capacity   int
	maxThreads int
	padded     bool
	backoff    bool
	metrics    *Metrics
}

// Option configures New.
type Option func(*config)

// WithAlgorithm selects the queue implementation; default AlgorithmCAS.
func WithAlgorithm(a Algorithm) Option { return func(c *config) { c.algorithm = a } }

// WithCapacity bounds the queue; array algorithms round up to a power of
// two. Default 1024.
func WithCapacity(n int) Option { return func(c *config) { c.capacity = n } }

// WithMaxThreads hints the peak number of concurrently attached sessions,
// sizing reclamation headroom for the hazard-pointer algorithms and the
// payload arena for all of them. Exceeding the hint is safe for the array
// algorithms (they are population-oblivious) but may surface as early
// ErrFull on the link-based ones. Default 128.
func WithMaxThreads(n int) Option { return func(c *config) { c.maxThreads = n } }

// WithPaddedSlots spreads array-queue slots across cache lines, trading
// memory for the elimination of inter-slot false sharing.
func WithPaddedSlots(on bool) Option { return func(c *config) { c.padded = on } }

// WithBackoff enables bounded exponential backoff in the retry loops of
// the two Evequoz algorithms.
func WithBackoff(on bool) Option { return func(c *config) { c.backoff = on } }

// WithMetrics attaches an operation-counter sink; see Metrics.
func WithMetrics(m *Metrics) Option { return func(c *config) { c.metrics = m } }

// Queue is a bounded MPMC FIFO of T values. Create with New; operate
// through per-goroutine Sessions.
type Queue[T any] struct {
	inner  queue.Queue
	arena  *arena.Arena
	values []T
}

// newInner resolves options and builds the word-level queue shared by
// New and NewRaw.
func newInner(opts []Option) (queue.Queue, config, error) {
	c := config{
		algorithm:  AlgorithmCAS,
		capacity:   1024,
		maxThreads: 128,
	}
	for _, o := range opts {
		o(&c)
	}
	if c.capacity <= 0 {
		return nil, c, fmt.Errorf("nbqueue: capacity %d must be positive", c.capacity)
	}
	algo, err := bench.Lookup(string(c.algorithm))
	if err != nil {
		return nil, c, fmt.Errorf("nbqueue: unknown algorithm %q", c.algorithm)
	}
	if !algo.Concurrent {
		return nil, c, fmt.Errorf("nbqueue: algorithm %q is not safe for concurrent use", c.algorithm)
	}
	var ctrs *xsync.Counters
	if c.metrics != nil {
		ctrs = c.metrics.counters()
	}
	return algo.New(bench.Config{
		Capacity:    c.capacity,
		MaxThreads:  c.maxThreads,
		Counters:    ctrs,
		PaddedSlots: c.padded,
		Backoff:     c.backoff,
	}), c, nil
}

// New builds a queue of T.
func New[T any](opts ...Option) (*Queue[T], error) {
	inner, c, err := newInner(opts)
	if err != nil {
		return nil, err
	}
	// The payload arena needs one node per queued value plus one
	// in-flight node per attached session.
	nodes := inner.Capacity() + c.maxThreads + 16
	a := arena.New(nodes)
	return &Queue[T]{
		inner:  inner,
		arena:  a,
		values: make([]T, nodes+1),
	}, nil
}

// Capacity returns the queue bound (array algorithms may round the
// requested capacity up).
func (q *Queue[T]) Capacity() int { return q.inner.Capacity() }

// Algorithm returns the display name of the underlying implementation.
func (q *Queue[T]) Algorithm() string { return q.inner.Name() }

// Session is one goroutine's handle on the queue. Obtain with Attach; use
// from a single goroutine; Detach when done.
type Session[T any] struct {
	q     *Queue[T]
	inner queue.Session
}

// Attach registers the calling goroutine and returns its session.
func (q *Queue[T]) Attach() *Session[T] {
	return &Session[T]{q: q, inner: q.inner.Attach()}
}

// Detach releases per-thread resources; the session must not be used
// afterwards.
func (s *Session[T]) Detach() {
	s.inner.Detach()
	s.inner = nil
}

// Enqueue inserts v at the tail, returning ErrFull when the queue is at
// capacity.
func (s *Session[T]) Enqueue(v T) error {
	h := s.q.arena.Alloc()
	if h == arena.Nil {
		// Arena pressure means capacity + in-flight slack is exhausted —
		// the queue is full for all practical purposes.
		return ErrFull
	}
	s.q.values[h>>1] = v
	if err := s.inner.Enqueue(h); err != nil {
		var zero T
		s.q.values[h>>1] = zero
		s.q.arena.Free(h)
		return err
	}
	return nil
}

// Dequeue removes and returns the value at the head; ok is false when the
// queue was observed empty.
func (s *Session[T]) Dequeue() (v T, ok bool) {
	h, ok := s.inner.Dequeue()
	if !ok {
		return v, false
	}
	idx := h >> 1
	v = s.q.values[idx]
	var zero T
	s.q.values[idx] = zero
	s.q.arena.Free(h)
	return v, true
}

// TryDrain dequeues up to max values (all available when max <= 0),
// returning them in FIFO order. Convenience for shutdown paths.
func (s *Session[T]) TryDrain(max int) []T {
	var out []T
	for max <= 0 || len(out) < max {
		v, ok := s.Dequeue()
		if !ok {
			break
		}
		out = append(out, v)
	}
	return out
}
