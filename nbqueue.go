// Package nbqueue provides non-blocking concurrent FIFO queues built on
// single-word atomic primitives, reproducing Claude Evequoz,
// "Non-Blocking Concurrent FIFO Queues With Single Word Synchronization
// Primitives" (ICPP 2008), together with every baseline the paper
// measures.
//
// The two core algorithms are bounded circular-array queues:
//
//   - AlgorithmLLSC — the paper's Algorithm 1, written against
//     load-linked/store-conditional (emulated here from CAS with version
//     tags). Population-oblivious: no per-thread state at all.
//   - AlgorithmCAS — the paper's Algorithm 2, pure single-word CAS plus
//     FetchAndAdd. Threads reserve array slots by swapping in a tagged
//     reference to a registered, reference-counted LLSCvar record.
//
// AlgorithmSegmented extends Algorithm 2 beyond its fixed bound: rings
// become segments of a Michael–Scott-style linked list, appended under
// burst and retired through hazard pointers when drained. With
// WithUnbounded the queue never sheds for lack of space; with a plain
// WithCapacity the bound becomes a high-water soft cap.
//
// Baselines: Michael–Scott link-based queues with hazard-pointer
// reclamation (sorted and unsorted scans), the Doherty-style CAS-simulated
// LL/SC variant, the Shann et al. counted-slot array queue, the
// Tsigas–Zhang two-null array queue, a two-lock queue, and a buffered Go
// channel.
//
// # Usage
//
// The generic Queue[T] maps arbitrary payloads onto the word-sized values
// the algorithms move. Each goroutine attaches a Session before operating
// and detaches when done (some algorithms keep per-thread registration
// state; for the others Attach is nearly free):
//
//	q, err := nbqueue.New[string](nbqueue.WithCapacity(1024))
//	...
//	s := q.Attach()
//	defer s.Detach()
//	if err := s.Enqueue("job-17"); err != nil { ... }
//	if v, ok := s.Dequeue(); ok { ... }
//
// All queues are multi-producer multi-consumer and lock-free (except the
// explicitly blocking two-lock and channel baselines). Enqueue on a full
// bounded queue fails fast with ErrFull; Dequeue on an empty queue
// returns ok=false. Neither ever blocks.
//
// Batch variants — Session.EnqueueBatch, Session.DequeueBatch and the
// TryDrain convenience built on them — move many values per call. On the
// Evequoz-family algorithms a batch reserves its whole slot range with a
// single head/tail synchronization operation, amortizing the paper's
// per-operation RMW cost across the batch; see EnqueueBatch for the
// partial-batch semantics.
package nbqueue

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"nbqueue/internal/arena"
	"nbqueue/internal/bench"
	"nbqueue/internal/queue"
	"nbqueue/internal/trace"
	"nbqueue/internal/xsync"
)

// Algorithm selects a queue implementation.
type Algorithm string

// The available algorithms. AlgorithmLLSC and AlgorithmCAS are the
// paper's contributions; the rest are the measured baselines and
// extensions.
const (
	// AlgorithmLLSC is the paper's Algorithm 1 (Figure 3): circular
	// array over LL/SC. Population-oblivious, space O(capacity).
	AlgorithmLLSC Algorithm = bench.KeyEvqLLSC
	// AlgorithmCAS is the paper's Algorithm 2 (Figure 5): circular array
	// over CAS with simulated LL via registered LLSCvar records. This is
	// the most portable choice and the package default.
	AlgorithmCAS Algorithm = bench.KeyEvqCAS
	// AlgorithmSegmented chains Algorithm 2 rings into a Michael–Scott
	// linked list of segments with hazard-pointer segment reclamation:
	// the elastic extension of the paper's bounded array. With
	// WithUnbounded it absorbs arbitrary bursts (enqueues never shed
	// with ErrFull); with WithCapacity alone the capacity acts as a
	// high-water soft cap that still returns ErrFull. See WithUnbounded
	// and WithSegmentSize.
	AlgorithmSegmented Algorithm = bench.KeyEvqSeg
	// AlgorithmMSHazard is the Michael–Scott lock-free linked queue with
	// hazard-pointer reclamation, unsorted scans.
	AlgorithmMSHazard Algorithm = bench.KeyMSHP
	// AlgorithmMSHazardSorted is the same with sorted scans (faster at
	// high thread counts).
	AlgorithmMSHazardSorted Algorithm = bench.KeyMSHPSorted
	// AlgorithmMSDoherty is the Michael–Scott queue over Doherty-style
	// CAS-simulated LL/SC variables (the paper's slowest baseline).
	AlgorithmMSDoherty Algorithm = bench.KeyMSDoherty
	// AlgorithmShann is the Shann–Huang–Chen counted-slot array queue,
	// requiring a double-width (value+counter) CAS; payload values are
	// limited to 32 bits of handle space.
	AlgorithmShann Algorithm = bench.KeyShann
	// AlgorithmTsigasZhang is the Tsigas–Zhang two-null array queue.
	AlgorithmTsigasZhang Algorithm = bench.KeyTsigasZhang
	// AlgorithmTwoLock is the blocking Michael–Scott two-lock queue.
	AlgorithmTwoLock Algorithm = bench.KeyTwoLock
	// AlgorithmChannel adapts a buffered Go channel.
	AlgorithmChannel Algorithm = bench.KeyChan
	// AlgorithmSPSC is the Torquati-style single-producer/single-consumer
	// ring (slot-only synchronization, cache-line batching). Its safety
	// depends on a census — at most one enqueuing and one dequeuing
	// goroutine — that only Fabric proves at attach time, so New and
	// NewRaw reject it; Fabric specializes shards to it automatically.
	AlgorithmSPSC Algorithm = bench.KeySPSC
)

// Errors returned by queue operations.
var (
	// ErrFull reports a bounded queue at capacity.
	ErrFull = queue.ErrFull
	// ErrContended reports an operation abandoned because the retry
	// budget set with WithRetryBudget ran out while the operation kept
	// losing CAS races. The operation had no effect; the queue may have
	// room (or items). Callers use it to shed load instead of spinning.
	ErrContended = queue.ErrContended
	// ErrDeadline reports an operation aborted because the session
	// deadline (Session.SetDeadline, or the context deadline inside the
	// *Wait variants) passed while the operation was still retrying. The
	// operation had no effect. Distinct from ErrContended: the budget may
	// have had iterations left; time ran out instead.
	ErrDeadline = queue.ErrDeadline
	// ErrOverloaded reports an enqueue refused by watermark admission
	// control (WithWatermarks): the queue depth crossed the high
	// watermark and new work is being shed until it drains below the low
	// watermark. The operation had no effect and cost no slot-protocol
	// work.
	ErrOverloaded = queue.ErrOverloaded
)

// BackoffPolicy is the shared adaptive-backoff controller installed with
// WithBackoffPolicy: one per queue, consulted by every session's retry
// backoff and by the blocking wait layer. The controller applies AIMD to
// retry aggressiveness — under a high CAS/SC failure rate the spin
// ceiling doubles (decongesting the contended words), and once the
// failure rate falls it decays additively back toward MinSpin. The
// exported fields are configuration; zero values mean defaults. Mutate
// them only before handing the policy to New.
type BackoffPolicy = xsync.BackoffPolicy

// NewBackoffPolicy returns a policy with every knob at its default.
func NewBackoffPolicy() *BackoffPolicy { return xsync.NewBackoffPolicy() }

// config collects option state.
type config struct {
	algorithm      Algorithm
	capacity       int
	capSet         bool
	maxThreads     int
	padded         bool
	backoff        bool
	retryBudget    int
	unbounded      bool
	segSet         bool
	segSize        int
	metrics        *Metrics
	hook           func(Event)
	yield          func()
	policy         *BackoffPolicy
	starve         int
	lowWater       int
	highWater      int
	wmSet          bool
	spareSegs      int
	spareSet       bool
	memBound       int
	replenishFault func() bool
	replenishSet   bool
	segLow         int
	segHigh        int
	segWmSet       bool
	tracePerRing   int
	traceSet       bool
	// rec is the flight recorder newInner builds when traceSet; New
	// stores it on the Queue for TraceSnapshot.
	rec *trace.Recorder
}

// Option configures New.
type Option func(*config)

// Options folds several options into one, making option sets first-class
// values: a base configuration can be built once, passed around, layered
// (later options override earlier ones, exactly as if passed flat), and
// forwarded through one vetted path instead of re-spliced ad hoc at each
// call site. New, NewRaw, NewFabric's per-shard construction, and the
// jobs server all accept the combined value like any other Option:
//
//	base := nbqueue.Options(
//		nbqueue.WithAlgorithm(nbqueue.AlgorithmSegmented),
//		nbqueue.WithUnbounded(),
//	)
//	q, err := nbqueue.New[string](base, nbqueue.WithMetrics(m))
//
// Options(nil...) elements are ignored, so conditional construction can
// leave gaps instead of branching.
func Options(opts ...Option) Option {
	return func(c *config) {
		for _, o := range opts {
			if o != nil {
				o(c)
			}
		}
	}
}

// WithAlgorithm selects the queue implementation; default AlgorithmCAS.
func WithAlgorithm(a Algorithm) Option { return func(c *config) { c.algorithm = a } }

// WithCapacity bounds the queue; array algorithms round up to a power of
// two. Default 1024. Mutually exclusive with WithUnbounded; New rejects
// the combination.
func WithCapacity(n int) Option {
	return func(c *config) {
		c.capacity = n
		c.capSet = true
	}
}

// WithMaxThreads hints the peak number of concurrently attached sessions,
// sizing reclamation headroom for the hazard-pointer algorithms and the
// payload arena for all of them. Exceeding the hint is safe for the array
// algorithms (they are population-oblivious) but may surface as early
// ErrFull on the link-based ones. Default 128; New rejects n <= 0.
func WithMaxThreads(n int) Option { return func(c *config) { c.maxThreads = n } }

// WithPaddedSlots spreads array-queue slots across cache lines, trading
// memory for the elimination of inter-slot false sharing.
func WithPaddedSlots(on bool) Option { return func(c *config) { c.padded = on } }

// WithBackoff enables bounded exponential backoff in the retry loops of
// the two Evequoz algorithms.
func WithBackoff(on bool) Option { return func(c *config) { c.backoff = on } }

// WithRetryBudget bounds each operation of the two Evequoz algorithms to
// at most n retry-loop iterations. When the budget runs out, Enqueue and
// the *Wait variants surface ErrContended (and TryDequeue reports it) so
// the caller can shed load; without a budget the loops retry until they
// win, which is the paper's lock-free default. Ignored by the baseline
// algorithms. n == 0 disables the budget (the default); New rejects a
// negative n rather than guessing whether it meant "disabled".
func WithRetryBudget(n int) Option { return func(c *config) { c.retryBudget = n } }

// WithUnbounded lifts the capacity bound of AlgorithmSegmented: the
// queue grows by appending segments under burst and shrinks by retiring
// drained ones, and Enqueue never returns ErrFull for lack of space
// (only the segment-pool backstop, far past any configured capacity,
// and payload-arena exhaustion on the generic Queue[T] — see New —
// still shed). Mutually exclusive with WithCapacity: combine capacity
// with AlgorithmSegmented *instead of* WithUnbounded to get a
// high-water soft cap that still returns ErrFull at the configured
// depth. Only valid with AlgorithmSegmented.
func WithUnbounded() Option { return func(c *config) { c.unbounded = true } }

// WithSegmentSize sets the per-segment ring size of AlgorithmSegmented
// (rounded up to a power of two). Smaller segments track bursts more
// tightly and reclaim memory sooner; larger segments amortize the
// append/retire machinery further. Default: capacity/4 clamped to
// [16, 1024]. New rejects n <= 0 and any use with an algorithm other
// than AlgorithmSegmented (the knob would be silently meaningless).
func WithSegmentSize(n int) Option {
	return func(c *config) {
		c.segSize = n
		c.segSet = true
	}
}

// WithMetrics attaches an operation-counter sink; see Metrics.
func WithMetrics(m *Metrics) Option { return func(c *config) { c.metrics = m } }

// WithBackoffPolicy installs a shared adaptive-backoff controller on the
// Evequoz-family algorithms, superseding WithBackoff's fixed bounds: the
// per-session spin ceiling follows the policy's AIMD controller, driven
// by the live CAS/SC failure rate (read from the WithMetrics counters
// when present). The same policy also tunes the blocking *Wait variants'
// spin counts and sleep bounds. One policy per queue — sharing blends
// unrelated contention signals. A nil p is ignored. Ignored by the
// baseline algorithms (the wait-layer tuning still applies).
func WithBackoffPolicy(p *BackoffPolicy) Option { return func(c *config) { c.policy = p } }

// WithStarvationBound enables starvation detection with cooperative
// helping on AlgorithmLLSC and AlgorithmCAS: an operation that has lost
// more than n consecutive retry rounds is published to the queue's
// announce array, where the sessions currently winning complete it on
// the victim's behalf. Lock-freedom only promises system-wide progress;
// the bound adds a per-operation one. Completed rescues are visible as
// Metrics Snapshot.StarvationRescues. n == 0 disables helping (the
// default); New rejects a negative n. Ignored by the other algorithms.
func WithStarvationBound(n int) Option { return func(c *config) { c.starve = n } }

// WithWatermarks enables admission control on the queue built by New:
// once the observed depth reaches high, Enqueue and EnqueueBatch fail
// fast with ErrOverloaded — before any arena allocation or slot-protocol
// work — until the depth drains to low or below (hysteresis, so
// admission does not flap at the boundary). Dequeues are never refused.
// The overload transitions fire EventOverloadEnter/EventOverloadExit on
// the WithEventHook observer and each refused enqueue counts toward
// Snapshot.OverloadSheds.
//
// Requires 0 < low <= high and an algorithm whose depth is observable
// (the bounded array queues and AlgorithmSegmented); New rejects
// anything else, as does NewRaw (admission lives in the payload layer).
// The depth read is a racy snapshot, so a burst of concurrent enqueues
// can overshoot high by the number of in-flight operations; watermarks
// bound steady-state depth, they are not a hard capacity.
func WithWatermarks(low, high int) Option {
	return func(c *config) {
		c.lowWater = low
		c.highWater = high
		c.wmSet = true
	}
}

// WithSpareSegments sets the spare-segment pool size of
// AlgorithmSegmented: n prepared ring segments are kept pre-armed so a
// burst that crosses a segment boundary pops a ready segment instead of
// allocating or resetting ring memory inside the admitted enqueue — the
// single largest contributor to the segmented queue's overload tail
// latency. The pool is replenished off the latency path (after
// successful enqueues, on Detach, and by ScavengeOrphans). n == 0
// disables the pool; unset, the algorithm default (2) applies. New
// rejects a negative n and any use with another algorithm.
func WithSpareSegments(n int) Option {
	return func(c *config) {
		c.spareSegs = n
		c.spareSet = true
	}
}

// WithReplenishFault installs a chaos hook on AlgorithmSegmented's
// spare-pool replenishment: each off-path replenish attempt consults f
// and a true return makes that attempt fail silently, as if the
// allocator were exhausted, leaving the spare pool shallower than its
// capacity. Replenish failure is never an operation error — appends
// fall back to inline allocation on a spare miss (counted in
// Snapshot.SpareSegmentMisses) — so the hook models an allocation
// outage degrading the queue to exactly its pre-pool latency profile.
// The pipeline fault matrix uses it for the replenish-outage cell; nil
// (the default) disables the hook. New rejects any use with another
// algorithm.
func WithReplenishFault(f func() bool) Option {
	return func(c *config) {
		c.replenishFault = f
		c.replenishSet = true
	}
}

// WithMemoryBound caps AlgorithmSegmented's segment population — live,
// preparing, and pooled spare segments together — at n segments,
// reserved atomically before any allocation so concurrent growth can
// never overshoot the cap, even transiently. An enqueue that would grow
// past it sheds with ErrFull (after pressuring segment reclamation so
// the free list absorbs the next burst), converting overload into
// bounded-memory load shedding instead of unbounded growth. Composes
// with WithUnbounded: the queue is then unbounded in *depth* until the
// memory bound's segments fill. Segments already retired and awaiting
// hazard reclamation sit outside the bound; they are limited separately
// by the sessions' reclamation budgets. New rejects n <= 0 and any use
// with another algorithm.
func WithMemoryBound(n int) Option { return func(c *config) { c.memBound = n } }

// WithSegmentWatermarks arms segment-count admission control on
// AlgorithmSegmented: once the chain holds high or more segments
// (live + preparing), Enqueue and EnqueueBatch fail fast with
// ErrOverloaded — before any ring work or grow attempt — until the
// chain drains to at most low segments (hysteresis, so admission does
// not flap at the boundary). This is WithWatermarks keyed on the
// *growth* signal instead of depth: depth watermarks see overload only
// after items accumulate, segment watermarks see it the moment the
// queue starts eating memory to absorb it. Both can be armed together;
// either refusing sheds the enqueue. Transitions fire
// EventOverloadEnter/EventOverloadExit with Op "segments" on the
// WithEventHook observer, and refused enqueues count toward
// Snapshot.SegmentSheds. Requires 0 < low <= high and
// AlgorithmSegmented; New rejects anything else.
func WithSegmentWatermarks(low, high int) Option {
	return func(c *config) {
		c.segLow = low
		c.segHigh = high
		c.segWmSet = true
	}
}

// Queue is a bounded MPMC FIFO of T values. Create with New; operate
// through per-goroutine Sessions.
type Queue[T any] struct {
	inner  queue.Queue
	arena  *arena.Arena
	values []T
	leaked atomic.Uint64
	// mctr records lifecycle events (scavenges, leaks) into the
	// WithMetrics counter bank; a zero handle when metrics are off.
	mctr xsync.Handle
	// hists backs the per-session batch-size fallback recording for
	// algorithms without a native batch operation; nil when metrics are
	// off.
	hists *xsync.Histograms
	// hook is the WithEventHook observer; nil when unset.
	hook func(Event)
	// lowWater/highWater are the WithWatermarks thresholds; highWater 0
	// means admission control is off. lenFn observes the inner depth.
	lowWater  int
	highWater int
	lenFn     func() int
	// overloaded is the admission hysteresis state: set when depth
	// reached highWater, cleared when an enqueue probe sees depth at or
	// below lowWater.
	overloaded atomic.Bool
	// waitSpins/sleepMin/sleepMax tune the blocking *Wait variants,
	// from the WithBackoffPolicy policy or the package defaults.
	waitSpins int
	sleepMin  time.Duration
	sleepMax  time.Duration
	// rec is the WithTracing flight recorder (nil when tracing is off);
	// qtr is the queue-level handle used for lifecycle events that have
	// no owning session (scavenges).
	rec *trace.Recorder
	qtr trace.Handle
}

// admit is the watermark admission check, called by Enqueue and
// EnqueueBatch before any allocation or slot-protocol work.
func (q *Queue[T]) admit() error {
	if q.highWater == 0 {
		return nil
	}
	depth := q.lenFn()
	if q.overloaded.Load() {
		if depth > q.lowWater {
			q.mctr.Inc(xsync.OpOverload)
			return ErrOverloaded
		}
		// Drained below the low watermark: re-admit. CAS so exactly one
		// of the racing probes emits the exit event.
		if q.overloaded.CompareAndSwap(true, false) {
			q.emit(Event{Kind: EventOverloadExit, N: depth})
		}
		return nil
	}
	if depth >= q.highWater {
		if q.overloaded.CompareAndSwap(false, true) {
			q.emit(Event{Kind: EventOverloadEnter, N: depth})
		}
		q.mctr.Inc(xsync.OpOverload)
		return ErrOverloaded
	}
	return nil
}

// Overloaded reports whether watermark admission control is currently
// shedding enqueues (depth crossed high and has not yet drained to low).
// Always false without WithWatermarks. Exposed for gauges and tests.
func (q *Queue[T]) Overloaded() bool { return q.overloaded.Load() }

// emit delivers e to the event hook, stamping the algorithm name.
// Callers only reach it from rare paths (sheds, scavenges, leaks).
func (q *Queue[T]) emit(e Event) {
	if q.hook == nil {
		return
	}
	e.Algorithm = q.inner.Name()
	q.hook(e)
}

// newInner resolves options and builds the word-level queue shared by
// New and NewRaw.
func newInner(opts []Option) (queue.Queue, config, error) {
	c := config{
		algorithm:  AlgorithmCAS,
		capacity:   1024,
		maxThreads: 128,
	}
	for _, o := range opts {
		o(&c)
	}
	if c.capacity <= 0 {
		return nil, c, fmt.Errorf("nbqueue: capacity %d must be positive", c.capacity)
	}
	if c.maxThreads <= 0 {
		return nil, c, fmt.Errorf("nbqueue: WithMaxThreads(%d) must be positive", c.maxThreads)
	}
	if c.retryBudget < 0 {
		return nil, c, fmt.Errorf("nbqueue: WithRetryBudget(%d) is negative; use 0 to disable the budget", c.retryBudget)
	}
	if c.starve < 0 {
		return nil, c, fmt.Errorf("nbqueue: WithStarvationBound(%d) is negative; use 0 to disable helping", c.starve)
	}
	if c.wmSet {
		if c.lowWater <= 0 || c.lowWater > c.highWater {
			return nil, c, fmt.Errorf("nbqueue: WithWatermarks(%d, %d) needs 0 < low <= high", c.lowWater, c.highWater)
		}
	}
	if c.unbounded && c.algorithm != AlgorithmSegmented {
		return nil, c, fmt.Errorf("nbqueue: WithUnbounded requires AlgorithmSegmented, not %q", c.algorithm)
	}
	if c.unbounded && c.capSet {
		return nil, c, fmt.Errorf("nbqueue: WithUnbounded and WithCapacity(%d) are mutually exclusive; use WithCapacity alone for a high-water soft cap", c.capacity)
	}
	if c.segSet && c.algorithm != AlgorithmSegmented {
		return nil, c, fmt.Errorf("nbqueue: WithSegmentSize requires AlgorithmSegmented, not %q", c.algorithm)
	}
	if c.segSet && c.segSize <= 0 {
		return nil, c, fmt.Errorf("nbqueue: WithSegmentSize(%d) must be positive", c.segSize)
	}
	if c.spareSet {
		if c.algorithm != AlgorithmSegmented {
			return nil, c, fmt.Errorf("nbqueue: WithSpareSegments requires AlgorithmSegmented, not %q", c.algorithm)
		}
		if c.spareSegs < 0 {
			return nil, c, fmt.Errorf("nbqueue: WithSpareSegments(%d) is negative; use 0 to disable the pool", c.spareSegs)
		}
	}
	if c.memBound != 0 {
		if c.algorithm != AlgorithmSegmented {
			return nil, c, fmt.Errorf("nbqueue: WithMemoryBound requires AlgorithmSegmented, not %q", c.algorithm)
		}
		if c.memBound < 0 {
			return nil, c, fmt.Errorf("nbqueue: WithMemoryBound(%d) must be positive", c.memBound)
		}
	}
	if c.replenishSet && c.algorithm != AlgorithmSegmented {
		return nil, c, fmt.Errorf("nbqueue: WithReplenishFault requires AlgorithmSegmented, not %q", c.algorithm)
	}
	if c.segWmSet {
		if c.algorithm != AlgorithmSegmented {
			return nil, c, fmt.Errorf("nbqueue: WithSegmentWatermarks requires AlgorithmSegmented, not %q", c.algorithm)
		}
		if c.segLow <= 0 || c.segLow > c.segHigh {
			return nil, c, fmt.Errorf("nbqueue: WithSegmentWatermarks(%d, %d) needs 0 < low <= high", c.segLow, c.segHigh)
		}
	}
	if c.traceSet {
		if c.tracePerRing < 0 {
			return nil, c, fmt.Errorf("nbqueue: WithTracing(%d) is negative; use 0 for the default ring size", c.tracePerRing)
		}
		if c.metrics == nil {
			return nil, c, fmt.Errorf("nbqueue: WithTracing requires WithMetrics (the recorder rides the metrics sampling beat)")
		}
	}
	if c.algorithm == AlgorithmSPSC {
		return nil, c, fmt.Errorf("nbqueue: AlgorithmSPSC is fabric-managed — its 1-producer/1-consumer discipline needs Fabric's attach-time census; use NewFabric (shards specialize automatically)")
	}
	algo, err := bench.Lookup(string(c.algorithm))
	if err != nil {
		return nil, c, fmt.Errorf("nbqueue: unknown algorithm %q", c.algorithm)
	}
	if !algo.Concurrent {
		return nil, c, fmt.Errorf("nbqueue: algorithm %q is not safe for concurrent use", c.algorithm)
	}
	var ctrs *xsync.Counters
	var hists *xsync.Histograms
	if c.metrics != nil {
		ctrs = c.metrics.counters()
		hists = c.metrics.histograms()
	}
	if c.policy != nil {
		// Fill defaults and, when counters exist, let the AIMD controller
		// read the live CAS/SC failure rate from them.
		c.policy.Normalize()
		if ctrs != nil {
			c.policy.Bind(ctrs)
		}
	}
	spare := 0
	if c.spareSet {
		spare = c.spareSegs
		if spare == 0 {
			spare = -1 // explicit disable, distinct from "use the default"
		}
	}
	if c.traceSet {
		c.rec = trace.New(c.tracePerRing)
	}
	inner := algo.New(bench.Config{
		Capacity:        c.capacity,
		MaxThreads:      c.maxThreads,
		Counters:        ctrs,
		Hists:           hists,
		Trace:           c.rec,
		PaddedSlots:     c.padded,
		Backoff:         c.backoff,
		RetryBudget:     c.retryBudget,
		Yield:           c.yield,
		Unbounded:       c.unbounded,
		SegSize:         c.segSize,
		Policy:          c.policy,
		StarvationBound: c.starve,
		SpareSegments:   spare,
		MemoryBound:     c.memBound,
		ReplenishFault:  c.replenishFault,
		SegLow:          c.segLow,
		SegHigh:         c.segHigh,
	})
	if c.hook != nil {
		name := inner.Name()
		hook := c.hook
		if g, ok := inner.(interface{ SetGrowHook(func(int)) }); ok {
			g.SetGrowHook(func(live int) {
				hook(Event{Kind: EventSegmentGrow, Algorithm: name, N: live})
			})
		}
		if o, ok := inner.(interface{ SetOverloadHook(func(bool, int)) }); ok {
			o.SetOverloadHook(func(entered bool, segments int) {
				kind := EventOverloadExit
				if entered {
					kind = EventOverloadEnter
				}
				hook(Event{Kind: kind, Algorithm: name, Op: "segments", N: segments})
			})
		}
	}
	return inner, c, nil
}

// New builds a queue of T.
func New[T any](opts ...Option) (*Queue[T], error) {
	inner, c, err := newInner(opts)
	if err != nil {
		return nil, err
	}
	// The payload arena needs one node per queued value plus one
	// in-flight node per attached session. An unbounded queue
	// (Capacity() == 0) has no word-level bound to size from, so the
	// arena becomes the generic layer's own backstop: 64Ki payload
	// nodes, past which Enqueue sheds with ErrFull rather than growing
	// without limit.
	capHint := inner.Capacity()
	if capHint == 0 {
		capHint = 1 << 16
	}
	nodes := capHint + c.maxThreads + 16
	a := arena.New(nodes)
	q := &Queue[T]{
		inner:     inner,
		arena:     a,
		values:    make([]T, nodes+1),
		hook:      c.hook,
		waitSpins: xsync.DefaultWaitSpins,
		sleepMin:  xsync.DefaultSleepMin,
		sleepMax:  xsync.DefaultSleepMax,
		rec:       c.rec,
		qtr:       c.rec.Handle(),
	}
	if c.policy != nil {
		q.waitSpins = c.policy.WaitSpins
		q.sleepMin = c.policy.SleepMin
		q.sleepMax = c.policy.SleepMax
	}
	if c.wmSet {
		l, ok := inner.(interface{ Len() int })
		if !ok {
			return nil, fmt.Errorf("nbqueue: WithWatermarks requires an algorithm with an observable depth, not %q", c.algorithm)
		}
		q.lowWater = c.lowWater
		q.highWater = c.highWater
		q.lenFn = l.Len
	}
	if c.metrics != nil {
		q.mctr = c.metrics.counters().Handle()
		q.hists = c.metrics.histograms()
	}
	return q, nil
}

// Capacity returns the queue bound (array algorithms may round the
// requested capacity up).
func (q *Queue[T]) Capacity() int { return q.inner.Capacity() }

// Algorithm returns the display name of the underlying implementation.
func (q *Queue[T]) Algorithm() string { return q.inner.Name() }

// Session is one goroutine's handle on the queue. Obtain with Attach (or
// let AttachFunc manage the lifecycle); use from a single goroutine;
// Detach when done. Detach is idempotent, but any other use after Detach
// panics.
type Session[T any] struct {
	q     *Queue[T]
	inner queue.Session
	// batchBuf is per-session scratch for mapping batch payloads to
	// queue words; sessions are single-goroutine, so reuse is safe.
	batchBuf []uint64
	// bhist records batch sizes for sessions whose algorithm has no
	// native batch operation (native ones record inside the word-level
	// call); a zero handle when metrics are off or the session is
	// batch-native.
	bhist xsync.HistHandle
	// tr records the payload layer's own shed outcomes (admission
	// control, arena exhaustion) into the WithTracing flight recorder;
	// the word-level algorithms record their outcomes themselves. A zero
	// handle when tracing is off.
	tr trace.Handle
}

// leakHandler, when set, observes garbage-collected undetached sessions.
var leakHandler atomic.Pointer[func(algorithm string)]

// SetLeakHandler installs fn, invoked (from the runtime's finalizer
// goroutine) with the algorithm name each time a Session is garbage
// collected without Detach — a leak of the session's per-thread record
// that only the orphan scavenger can repair. A nil fn removes the
// handler. Intended for wiring a log line or a test hook; the leak is
// always counted on the queue regardless (see LeakedSessions).
func SetLeakHandler(fn func(algorithm string)) {
	if fn == nil {
		leakHandler.Store(nil)
		return
	}
	leakHandler.Store(&fn)
}

// LeakedSessions counts sessions of this queue that were garbage
// collected without Detach. The count is best-effort (it advances when
// the GC runs finalizers), but a nonzero value always indicates a real
// lifecycle bug in the caller.
func (q *Queue[T]) LeakedSessions() uint64 { return q.leaked.Load() }

// Attach registers the calling goroutine and returns its session.
//
// A session dropped without Detach leaks its per-thread registration
// record (the crash model the paper acknowledges for Algorithm 2). As a
// safety net, a finalizer detaches such sessions when the GC proves them
// unreachable, counts the leak (LeakedSessions), and reports it to the
// SetLeakHandler hook — but GC-timed reclamation is far too late for a
// production attach/detach cycle, so treat any leak report as a bug.
func (q *Queue[T]) Attach() *Session[T] {
	s := &Session[T]{q: q, inner: q.inner.Attach(), tr: q.rec.Handle()}
	if _, native := s.inner.(queue.BatchSession); !native {
		s.bhist = q.hists.Handle()
	}
	runtime.SetFinalizer(s, func(dead *Session[T]) {
		if dead.inner == nil {
			return
		}
		dead.q.leaked.Add(1)
		dead.q.mctr.Inc(xsync.OpLeak)
		dead.q.emit(Event{Kind: EventSessionLeaked})
		if h := leakHandler.Load(); h != nil {
			(*h)(dead.q.inner.Name())
		}
		dead.inner.Detach()
		dead.inner = nil
	})
	return s
}

// AttachFunc runs fn with a freshly attached session and guarantees
// Detach afterwards — including when fn panics, the case where a plain
// Attach/defer-less pattern would leak the per-thread record. It is the
// recommended way to scope a worker's queue access:
//
//	err := q.AttachFunc(func(s *nbqueue.Session[string]) error {
//		return s.Enqueue("job")
//	})
func (q *Queue[T]) AttachFunc(fn func(s *Session[T]) error) error {
	s := q.Attach()
	defer s.Detach()
	return fn(s)
}

// Detach releases per-thread resources. Idempotent: extra Detach calls
// are no-ops. Any other method panics once the session is detached.
func (s *Session[T]) Detach() {
	if s.inner == nil {
		return
	}
	runtime.SetFinalizer(s, nil)
	s.inner.Detach()
	s.inner = nil
}

// use returns the inner session, panicking with a clear message when the
// session was already detached.
func (s *Session[T]) use() queue.Session {
	if s.inner == nil {
		panic("nbqueue: session used after Detach")
	}
	return s.inner
}

// SetDeadline arms an absolute deadline on every subsequent operation of
// this session: an operation still retrying when t passes aborts with
// ErrDeadline (Dequeue folds the abort into ok=false; batch forms return
// the positional partial). The zero time clears the deadline. Unlike a
// retry budget — which bounds iterations — the deadline bounds wall
// time, so a preempted or helped-along session still stops on schedule.
// Supported by the Evequoz-family algorithms; ok is false (and the call
// a no-op) elsewhere. The *Wait variants arm it automatically from their
// context's deadline.
func (s *Session[T]) SetDeadline(t time.Time) (ok bool) {
	ds, ok := s.use().(queue.DeadlineSession)
	if ok {
		ds.SetDeadline(t)
	}
	return ok
}

// Enqueue inserts v at the tail, returning ErrFull when the queue is at
// capacity, or ErrContended when a WithRetryBudget budget ran out.
//
// The operation family shares one error contract. Enqueue, EnqueueBatch
// and DequeueBatch report conditions through the single error result:
// nil on success, ErrFull for a queue (or payload arena) at capacity,
// ErrContended for a retry budget that ran out; the batch forms pair it
// with a count of elements that took effect before the condition.
// Dequeue and TryDequeue report emptiness through ok=false instead —
// Dequeue folds budget exhaustion into the same ok=false, TryDequeue
// keeps it visible as an error. TryDrain is the loop-free bulk form of
// Dequeue, built on DequeueBatch.
func (s *Session[T]) Enqueue(v T) error {
	inner := s.use()
	if err := s.q.admit(); err != nil {
		s.tr.OpSampled(trace.KindEnqueue, trace.OutcomeOverloaded, 0)
		return err
	}
	h := s.q.arena.Alloc()
	if h == arena.Nil {
		// Arena pressure means capacity + in-flight slack is exhausted —
		// the queue is full for all practical purposes.
		s.tr.OpSampled(trace.KindEnqueue, trace.OutcomeFull, 0)
		return ErrFull
	}
	s.q.values[h>>1] = v
	if err := inner.Enqueue(h); err != nil {
		var zero T
		s.q.values[h>>1] = zero
		s.q.arena.Free(h)
		if err == ErrContended {
			s.q.emit(Event{Kind: EventContentionShed, Op: "enqueue"})
		}
		return err
	}
	return nil
}

// take maps a dequeued word back to its payload and releases the node.
func (s *Session[T]) take(h uint64) T {
	idx := h >> 1
	v := s.q.values[idx]
	var zero T
	s.q.values[idx] = zero
	s.q.arena.Free(h)
	return v
}

// Dequeue removes and returns the value at the head; ok is false when the
// queue was observed empty. Dequeue is exactly TryDequeue with the error
// coerced away: under WithRetryBudget, a contended attempt whose budget
// ran out also reports ok=false, indistinguishable from empty. Use
// TryDequeue when shedding and emptiness must be told apart.
func (s *Session[T]) Dequeue() (v T, ok bool) {
	inner := s.use()
	if s.q.hook != nil {
		// With an event hook installed, budget exhaustion must stay
		// observable even though Dequeue's signature folds it away.
		if bs, budgeted := inner.(queue.BudgetSession); budgeted {
			h, ok, err := bs.DequeueErr()
			if err == ErrContended {
				s.q.emit(Event{Kind: EventRetryBudgetExhausted, Op: "dequeue"})
			}
			if !ok {
				return v, false
			}
			return s.take(h), true
		}
	}
	h, ok := inner.Dequeue()
	if !ok {
		return v, false
	}
	return s.take(h), true
}

// TryDequeue is the ErrContended-aware variant of Dequeue: ok=false with
// a nil error means the queue was observed empty, while ok=false with
// ErrContended means the WithRetryBudget attempt budget ran out while
// the queue was contended (it may be nonempty). Without a retry budget
// it behaves exactly like Dequeue.
func (s *Session[T]) TryDequeue() (v T, ok bool, err error) {
	inner := s.use()
	bs, budgeted := inner.(queue.BudgetSession)
	if !budgeted {
		v, ok = s.Dequeue()
		return v, ok, nil
	}
	h, ok, err := bs.DequeueErr()
	if !ok {
		if err == ErrContended {
			s.q.emit(Event{Kind: EventContentionShed, Op: "dequeue"})
		}
		return v, false, err
	}
	return s.take(h), true, nil
}

// words returns a scratch word slice of length n, reused across this
// session's batch calls.
func (s *Session[T]) words(n int) []uint64 {
	if cap(s.batchBuf) < n {
		s.batchBuf = make([]uint64, n)
	}
	return s.batchBuf[:n]
}

// EnqueueBatch inserts the values of vs, in order, at the tail,
// returning how many took effect. On the Evequoz-family algorithms
// (AlgorithmLLSC, AlgorithmCAS, AlgorithmSegmented) the whole batch is
// reserved with a single tail RMW — one LL/SC pair or one CAS instead
// of one per element — which is where the batch speedup comes from; the
// baseline algorithms fall back to an internal loop of single enqueues.
//
// A batch is not atomic: each element becomes visible individually, in
// order, and consumers can observe a half-delivered batch. On ErrFull
// or ErrContended the first n elements were enqueued and the rest had
// no effect; retry with vs[n:] to continue. n < len(vs) with a nil
// error does not occur. An empty vs returns (0, nil) without touching
// the queue.
func (s *Session[T]) EnqueueBatch(vs []T) (int, error) {
	inner := s.use()
	if len(vs) == 0 {
		return 0, nil
	}
	if err := s.q.admit(); err != nil {
		s.tr.OpSampled(trace.KindEnqueueBatch, trace.OutcomeOverloaded, len(vs))
		return 0, err
	}
	// Map payloads into arena nodes first; a short allocation is arena
	// pressure, reported as ErrFull after the words that did fit go in.
	buf := s.words(len(vs))
	filled := 0
	for _, v := range vs {
		h := s.q.arena.Alloc()
		if h == arena.Nil {
			break
		}
		s.q.values[h>>1] = v
		buf[filled] = h
		filled++
	}
	n, err := queue.EnqueueBatch(inner, buf[:filled])
	s.bhist.ObserveEnqBatchSize(n)
	var zero T
	for _, h := range buf[n:filled] {
		s.q.values[h>>1] = zero
		s.q.arena.Free(h)
	}
	if err == nil && filled < len(vs) {
		err = ErrFull
	}
	if err == ErrContended {
		s.q.emit(Event{Kind: EventContentionShed, Op: "enqueue"})
	}
	return n, err
}

// DequeueBatch removes up to len(dst) values from the head into dst,
// returning how many it filled. Like EnqueueBatch, the Evequoz-family
// algorithms reserve the whole range with a single head RMW; baselines
// loop. n < len(dst) with a nil error means the queue was observed
// empty after n elements; ErrContended means a WithRetryBudget budget
// ran out with n elements already drained (those are kept — dst[:n] is
// always valid). An empty dst returns (0, nil).
func (s *Session[T]) DequeueBatch(dst []T) (int, error) {
	inner := s.use()
	if len(dst) == 0 {
		return 0, nil
	}
	buf := s.words(len(dst))
	n, err := queue.DequeueBatch(inner, buf)
	s.bhist.ObserveDeqBatchSize(n)
	for i := 0; i < n; i++ {
		dst[i] = s.take(buf[i])
	}
	if err == ErrContended {
		s.q.emit(Event{Kind: EventContentionShed, Op: "dequeue"})
	}
	return n, err
}

// ScavengeOrphans advances the queue's orphan-detection epoch and
// reclaims per-thread records of sessions presumed abandoned without
// Detach, returning how many it reclaimed (always 0 for algorithms with
// stateless sessions). A record is presumed abandoned when its session
// performed no operation across the two preceding ScavengeOrphans calls,
// so reclamation requires at least two calls after the session died —
// call it periodically from a janitor goroutine.
//
// Caveat: the staleness heuristic cannot distinguish a dead session from
// an attached-but-idle one. Only run the scavenger when idle sessions do
// not exist by construction (workers operate continuously, or crashed
// workers are the only ones that stop operating). A live session whose
// record was wrongly reclaimed while *between* operations recovers
// transparently; one reclaimed mid-operation is undefined behaviour.
func (q *Queue[T]) ScavengeOrphans() int {
	sc, ok := q.inner.(queue.Scavenger)
	if !ok {
		return 0
	}
	sc.AdvanceEpoch()
	n := sc.Scavenge(2)
	if n > 0 {
		q.mctr.Add(xsync.OpScavenge, uint64(n))
		q.qtr.Event(trace.OutcomeScavenge, n)
		q.emit(Event{Kind: EventOrphanScavenged, N: n})
	}
	return n
}

// Orphans counts per-thread records presumed abandoned (see
// ScavengeOrphans for the staleness policy); 0 for algorithms with
// stateless sessions.
func (q *Queue[T]) Orphans() int {
	sc, ok := q.inner.(queue.Scavenger)
	if !ok {
		return 0
	}
	return sc.Orphans(2)
}

// Len reports the queue's current depth for algorithms that can observe
// it (the bounded array queues and AlgorithmSegmented); ok is false when
// the algorithm cannot. For the bounded array queues the read is O(1);
// for AlgorithmSegmented it walks the segment chain — O(segments) — and
// sums per-segment occupancy, so concurrent appends and retires can skew
// the estimate by up to a segment's worth of items. In all cases the
// value is a snapshot that may be stale by the time the caller acts on
// it: exact at quiescence, approximate under concurrency — and batch
// operations widen the window, since a single concurrent EnqueueBatch
// or DequeueBatch moves the depth by up to its whole batch length while
// Len reads. The result is always within [0, capacity] for bounded
// queues; treat it as an occupancy gauge, not a synchronization
// primitive.
func (q *Queue[T]) Len() (n int, ok bool) {
	l, ok := q.inner.(interface{ Len() int })
	if !ok {
		return 0, false
	}
	return l.Len(), true
}

// SegmentStats is one coherent snapshot of AlgorithmSegmented's segment
// accounting: live chain length, spare-pool depth, preparing-state
// segments, the memory-bound-governed population, and whether
// segment-watermark admission is currently shedding. It replaces the
// five per-field accessors (Segments, SpareSegments, PendingSegments,
// MemorySegments, SegmentsOverloaded), which survive as deprecated
// wrappers; new code reads the struct once instead of sequencing five
// calls, and Fabric sums it across shards.
type SegmentStats = queue.SegmentStats

// SegmentStats reports the segment accounting of AlgorithmSegmented in
// one call; ok is false for the single-array and link-based algorithms.
// Every field is a racy gauge read (exact at quiescence, approximate
// under concurrency) — the struct groups the reads, it does not make
// them a consistent cut.
func (q *Queue[T]) SegmentStats() (s SegmentStats, ok bool) {
	ss, ok := q.inner.(queue.SegmentStatser)
	if !ok {
		return SegmentStats{}, false
	}
	return ss.SegmentStats(), true
}

// Segments reports the number of live ring segments for
// AlgorithmSegmented; ok is false for the other algorithms.
//
// Deprecated: use SegmentStats, which returns all segment gauges in one
// snapshot; this wrapper reads SegmentStats().Live.
func (q *Queue[T]) Segments() (n int, ok bool) {
	s, ok := q.SegmentStats()
	return s.Live, ok
}

// SpareSegments reports how many prepared ring segments are parked in
// AlgorithmSegmented's spare pool (see WithSpareSegments); ok is false
// for the other algorithms.
//
// Deprecated: use SegmentStats, which returns all segment gauges in one
// snapshot; this wrapper reads SegmentStats().Spare.
func (q *Queue[T]) SpareSegments() (n int, ok bool) {
	s, ok := q.SegmentStats()
	return s.Spare, ok
}

// PendingSegments reports AlgorithmSegmented's preparing-state segments
// (allocated or popped from the spare pool, not yet linked); ok is
// false for the other algorithms.
//
// Deprecated: use SegmentStats, which returns all segment gauges in one
// snapshot; this wrapper reads SegmentStats().Pending.
func (q *Queue[T]) PendingSegments() (n int, ok bool) {
	s, ok := q.SegmentStats()
	return s.Pending, ok
}

// MemorySegments reports the segment population WithMemoryBound governs
// — live + preparing + spare — for AlgorithmSegmented; ok is false for
// the other algorithms.
//
// Deprecated: use SegmentStats, which returns all segment gauges in one
// snapshot; this wrapper reads SegmentStats().Memory.
func (q *Queue[T]) MemorySegments() (n int, ok bool) {
	s, ok := q.SegmentStats()
	return s.Memory, ok
}

// SegmentsOverloaded reports whether WithSegmentWatermarks admission is
// currently refusing enqueues. Always false without segment watermarks
// or on other algorithms; the depth-based analogue is Overloaded.
//
// Deprecated: use SegmentStats, which returns all segment gauges in one
// snapshot; this wrapper reads SegmentStats().Overloaded.
func (q *Queue[T]) SegmentsOverloaded() bool {
	s, _ := q.SegmentStats()
	return s.Overloaded
}

// TryDrain dequeues up to max values (all available when max <= 0),
// returning them in FIFO order. Convenience for shutdown paths. It
// drains through DequeueBatch in chunks of 64, so on the batch-capable
// algorithms a drain of n items costs ~n/64 head RMWs instead of n.
// Like Dequeue, it folds ErrContended away: budget exhaustion ends the
// drain early with whatever had been collected.
func (s *Session[T]) TryDrain(max int) []T {
	const chunkSize = 64
	var out []T
	chunk := make([]T, chunkSize)
	for max <= 0 || len(out) < max {
		c := chunk
		if max > 0 && max-len(out) < chunkSize {
			c = chunk[:max-len(out)]
		}
		n, err := s.DequeueBatch(c)
		out = append(out, c[:n]...)
		if err != nil || n < len(c) {
			break
		}
	}
	return out
}
