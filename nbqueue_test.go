package nbqueue_test

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"nbqueue"
)

// allAlgorithms lists every concurrent algorithm exposed by the public
// API.
var allAlgorithms = []nbqueue.Algorithm{
	nbqueue.AlgorithmLLSC,
	nbqueue.AlgorithmCAS,
	nbqueue.AlgorithmSegmented,
	nbqueue.AlgorithmMSHazard,
	nbqueue.AlgorithmMSHazardSorted,
	nbqueue.AlgorithmMSDoherty,
	nbqueue.AlgorithmShann,
	nbqueue.AlgorithmTsigasZhang,
	nbqueue.AlgorithmTwoLock,
	nbqueue.AlgorithmChannel,
}

func TestBasicRoundTripAllAlgorithms(t *testing.T) {
	for _, a := range allAlgorithms {
		t.Run(string(a), func(t *testing.T) {
			q, err := nbqueue.New[string](
				nbqueue.WithAlgorithm(a),
				nbqueue.WithCapacity(16),
				nbqueue.WithMaxThreads(4),
			)
			if err != nil {
				t.Fatal(err)
			}
			s := q.Attach()
			defer s.Detach()
			for i := 0; i < 100; i++ {
				in := fmt.Sprintf("msg-%d", i)
				if err := s.Enqueue(in); err != nil {
					t.Fatalf("enqueue %d: %v", i, err)
				}
				out, ok := s.Dequeue()
				if !ok || out != in {
					t.Fatalf("dequeue %d = %q,%v want %q", i, out, ok, in)
				}
			}
		})
	}
}

func TestStructPayload(t *testing.T) {
	type job struct {
		ID   int
		Name string
		Data []byte
	}
	q, err := nbqueue.New[job](nbqueue.WithCapacity(8))
	if err != nil {
		t.Fatal(err)
	}
	s := q.Attach()
	defer s.Detach()
	in := job{ID: 7, Name: "build", Data: []byte{1, 2, 3}}
	if err := s.Enqueue(in); err != nil {
		t.Fatal(err)
	}
	out, ok := s.Dequeue()
	if !ok || out.ID != 7 || out.Name != "build" || len(out.Data) != 3 {
		t.Fatalf("round trip mangled payload: %+v", out)
	}
}

func TestFullAndEmpty(t *testing.T) {
	q, err := nbqueue.New[int](nbqueue.WithCapacity(4), nbqueue.WithMaxThreads(1))
	if err != nil {
		t.Fatal(err)
	}
	s := q.Attach()
	defer s.Detach()
	if _, ok := s.Dequeue(); ok {
		t.Fatal("fresh queue not empty")
	}
	n := 0
	for ; ; n++ {
		if err := s.Enqueue(n); err != nil {
			if !errors.Is(err, nbqueue.ErrFull) {
				t.Fatalf("enqueue: %v", err)
			}
			break
		}
		if n > q.Capacity()+32 {
			t.Fatal("never became full")
		}
	}
	if n < 4 {
		t.Fatalf("full after %d items, want >= 4", n)
	}
	for i := 0; i < n; i++ {
		v, ok := s.Dequeue()
		if !ok || v != i {
			t.Fatalf("dequeue %d = %d,%v", i, v, ok)
		}
	}
}

func TestInvalidConfig(t *testing.T) {
	cases := []struct {
		name string
		opts []nbqueue.Option
		want string // substring the error must mention
	}{
		{"negative capacity", []nbqueue.Option{nbqueue.WithCapacity(-1)}, "capacity"},
		{"zero capacity", []nbqueue.Option{nbqueue.WithCapacity(0)}, "capacity"},
		{"unknown algorithm", []nbqueue.Option{nbqueue.WithAlgorithm("nope")}, "algorithm"},
		{"non-concurrent algorithm", []nbqueue.Option{nbqueue.WithAlgorithm("seq")}, "concurrent"},
		{"zero max threads", []nbqueue.Option{nbqueue.WithMaxThreads(0)}, "WithMaxThreads"},
		{"negative max threads", []nbqueue.Option{nbqueue.WithMaxThreads(-4)}, "WithMaxThreads"},
		{"negative retry budget", []nbqueue.Option{nbqueue.WithRetryBudget(-1)}, "WithRetryBudget"},
		{"unbounded on default algorithm", []nbqueue.Option{nbqueue.WithUnbounded()}, "WithUnbounded"},
		{"unbounded on llsc", []nbqueue.Option{
			nbqueue.WithAlgorithm(nbqueue.AlgorithmLLSC), nbqueue.WithUnbounded()}, "WithUnbounded"},
		{"unbounded with capacity", []nbqueue.Option{
			nbqueue.WithAlgorithm(nbqueue.AlgorithmSegmented),
			nbqueue.WithUnbounded(), nbqueue.WithCapacity(64)}, "mutually exclusive"},
		{"segment size on default algorithm", []nbqueue.Option{nbqueue.WithSegmentSize(32)}, "WithSegmentSize"},
		{"segment size on mshp", []nbqueue.Option{
			nbqueue.WithAlgorithm(nbqueue.AlgorithmMSHazard), nbqueue.WithSegmentSize(32)}, "WithSegmentSize"},
		{"zero segment size", []nbqueue.Option{
			nbqueue.WithAlgorithm(nbqueue.AlgorithmSegmented), nbqueue.WithSegmentSize(0)}, "WithSegmentSize"},
		{"negative segment size", []nbqueue.Option{
			nbqueue.WithAlgorithm(nbqueue.AlgorithmSegmented), nbqueue.WithSegmentSize(-8)}, "WithSegmentSize"},
		// The SPSC algorithm is fabric-managed: its 1p1c discipline
		// needs the fabric's attach-time census, so the flat
		// constructor rejects it outright.
		{"spsc outside a fabric", []nbqueue.Option{
			nbqueue.WithAlgorithm(nbqueue.AlgorithmSPSC)}, "fabric-managed"},
		// Options() folds into one Option but must neither mask a bad
		// combination nor break validation ordering.
		{"bad combination inside Options", []nbqueue.Option{nbqueue.Options(
			nbqueue.WithAlgorithm(nbqueue.AlgorithmSegmented),
			nbqueue.WithUnbounded(), nbqueue.WithCapacity(64))}, "mutually exclusive"},
		{"bad value inside nested Options", []nbqueue.Option{nbqueue.Options(
			nbqueue.Options(nbqueue.WithCapacity(-1)))}, "capacity"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := nbqueue.New[int](tc.opts...)
			if err == nil {
				t.Fatal("invalid option combination accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	// The valid forms of the knobs the table rejects must still work.
	valid := [][]nbqueue.Option{
		{nbqueue.WithRetryBudget(0)},
		{nbqueue.WithAlgorithm(nbqueue.AlgorithmSegmented), nbqueue.WithUnbounded(), nbqueue.WithSegmentSize(32)},
		{nbqueue.WithAlgorithm(nbqueue.AlgorithmSegmented), nbqueue.WithCapacity(64)},
		// Options composition: later options override earlier ones,
		// nil elements are skipped, nesting is transparent.
		{nbqueue.Options(nbqueue.WithCapacity(16)), nbqueue.WithCapacity(64)},
		{nbqueue.Options(nil, nbqueue.Options(nbqueue.WithCapacity(64)), nil)},
	}
	for i, opts := range valid {
		if _, err := nbqueue.New[int](opts...); err != nil {
			t.Errorf("valid combination %d rejected: %v", i, err)
		}
	}
}

func TestMetrics(t *testing.T) {
	m := nbqueue.NewMetrics()
	q, err := nbqueue.New[int](
		nbqueue.WithAlgorithm(nbqueue.AlgorithmCAS),
		nbqueue.WithCapacity(16),
		nbqueue.WithMetrics(m),
	)
	if err != nil {
		t.Fatal(err)
	}
	s := q.Attach()
	for i := 0; i < 100; i++ {
		if err := s.Enqueue(i); err != nil {
			t.Fatal(err)
		}
		if _, ok := s.Dequeue(); !ok {
			t.Fatal("empty")
		}
	}
	s.Detach()
	snap := m.Snapshot()
	if snap.Enqueues != 100 || snap.Dequeues != 100 || snap.Ops() != 200 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if c := snap.CASPerOp(); c < 2.9 || c > 3.1 {
		t.Errorf("CASPerOp = %.2f, want ~3 for Algorithm 2", c)
	}
	m.Reset()
	if m.Snapshot().Ops() != 0 {
		t.Error("reset did not clear")
	}
}

func TestConcurrentProducersConsumers(t *testing.T) {
	for _, a := range allAlgorithms {
		t.Run(string(a), func(t *testing.T) {
			q, err := nbqueue.New[int](
				nbqueue.WithAlgorithm(a),
				nbqueue.WithCapacity(128),
				nbqueue.WithMaxThreads(8),
			)
			if err != nil {
				t.Fatal(err)
			}
			const producers = 4
			const perProducer = 2000
			var wg sync.WaitGroup
			seen := make([]bool, producers*perProducer)
			var mu sync.Mutex
			for p := 0; p < producers; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					s := q.Attach()
					defer s.Detach()
					for i := 0; i < perProducer; i++ {
						for s.Enqueue(p*perProducer+i) != nil {
							runtime.Gosched()
						}
					}
				}(p)
			}
			for c := 0; c < 4; c++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					s := q.Attach()
					defer s.Detach()
					count := 0
					for count < perProducer {
						v, ok := s.Dequeue()
						if !ok {
							runtime.Gosched()
							continue
						}
						mu.Lock()
						if seen[v] {
							mu.Unlock()
							t.Errorf("value %d delivered twice", v)
							return
						}
						seen[v] = true
						mu.Unlock()
						count++
					}
				}()
			}
			wg.Wait()
			mu.Lock()
			defer mu.Unlock()
			for v, ok := range seen {
				if !ok {
					t.Fatalf("value %d lost", v)
				}
			}
		})
	}
}

func TestTryDrain(t *testing.T) {
	q, err := nbqueue.New[int](nbqueue.WithCapacity(16))
	if err != nil {
		t.Fatal(err)
	}
	s := q.Attach()
	defer s.Detach()
	for i := 0; i < 10; i++ {
		if err := s.Enqueue(i); err != nil {
			t.Fatal(err)
		}
	}
	first := s.TryDrain(3)
	if len(first) != 3 || first[0] != 0 || first[2] != 2 {
		t.Fatalf("TryDrain(3) = %v", first)
	}
	rest := s.TryDrain(0)
	if len(rest) != 7 || rest[0] != 3 || rest[6] != 9 {
		t.Fatalf("TryDrain(0) = %v", rest)
	}
}

func TestAlgorithmNames(t *testing.T) {
	q, err := nbqueue.New[int](nbqueue.WithAlgorithm(nbqueue.AlgorithmLLSC), nbqueue.WithCapacity(4))
	if err != nil {
		t.Fatal(err)
	}
	if q.Algorithm() != "FIFO Array LL/SC" {
		t.Errorf("Algorithm() = %q", q.Algorithm())
	}
	if q.Capacity() != 4 {
		t.Errorf("Capacity() = %d, want 4", q.Capacity())
	}
}

// TestPointerPayloadGC: pointer payloads must survive the handle round
// trip even under GC pressure (values are held in a GC-visible slice, so
// nothing is hidden from the collector).
func TestPointerPayloadGC(t *testing.T) {
	q, err := nbqueue.New[*string](nbqueue.WithCapacity(64))
	if err != nil {
		t.Fatal(err)
	}
	s := q.Attach()
	defer s.Detach()
	for i := 0; i < 32; i++ {
		v := fmt.Sprintf("payload-%d", i)
		if err := s.Enqueue(&v); err != nil {
			t.Fatal(err)
		}
	}
	runtime.GC()
	runtime.GC()
	for i := 0; i < 32; i++ {
		p, ok := s.Dequeue()
		if !ok || p == nil || *p != fmt.Sprintf("payload-%d", i) {
			t.Fatalf("payload %d corrupted: %v", i, p)
		}
	}
}

// TestBatchRoundTripAllAlgorithms exercises the public batch API on
// every algorithm: native on the Evequoz family, fallback loop on the
// baselines.
func TestBatchRoundTripAllAlgorithms(t *testing.T) {
	for _, a := range allAlgorithms {
		t.Run(string(a), func(t *testing.T) {
			q, err := nbqueue.New[string](
				nbqueue.WithAlgorithm(a),
				nbqueue.WithCapacity(256),
				nbqueue.WithMaxThreads(4),
			)
			if err != nil {
				t.Fatal(err)
			}
			s := q.Attach()
			defer s.Detach()

			if n, err := s.EnqueueBatch(nil); n != 0 || err != nil {
				t.Fatalf("EnqueueBatch(nil) = %d,%v", n, err)
			}
			if n, err := s.DequeueBatch(nil); n != 0 || err != nil {
				t.Fatalf("DequeueBatch(nil) = %d,%v", n, err)
			}

			vs := make([]string, 100)
			for i := range vs {
				vs[i] = fmt.Sprintf("msg-%d", i)
			}
			n, err := s.EnqueueBatch(vs)
			if n != 100 || err != nil {
				t.Fatalf("EnqueueBatch = %d,%v want 100,nil", n, err)
			}
			// Oversized dst: a nil error with a short count means empty.
			dst := make([]string, 128)
			n, err = s.DequeueBatch(dst)
			if n != 100 || err != nil {
				t.Fatalf("DequeueBatch = %d,%v want 100,nil", n, err)
			}
			for i := 0; i < n; i++ {
				if dst[i] != vs[i] {
					t.Fatalf("dst[%d] = %q want %q", i, dst[i], vs[i])
				}
			}
			// Batches interleave with singles on the same session.
			if _, err := s.EnqueueBatch(vs[:10]); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 5; i++ {
				if v, ok := s.Dequeue(); !ok || v != vs[i] {
					t.Fatalf("Dequeue after batch = %q,%v", v, ok)
				}
			}
			n, err = s.DequeueBatch(dst)
			if n != 5 || err != nil || dst[0] != vs[5] {
				t.Fatalf("mixed drain = %d,%v dst[0]=%q", n, err, dst[0])
			}
		})
	}
}

// TestBatchPartialOnFull checks the partial-prefix contract at the
// capacity boundary: n elements in, ErrFull, remainder untouched and
// retryable after room opens.
func TestBatchPartialOnFull(t *testing.T) {
	for _, a := range []nbqueue.Algorithm{nbqueue.AlgorithmLLSC, nbqueue.AlgorithmCAS} {
		t.Run(string(a), func(t *testing.T) {
			q, err := nbqueue.New[int](
				nbqueue.WithAlgorithm(a),
				nbqueue.WithCapacity(8),
				nbqueue.WithMaxThreads(1),
			)
			if err != nil {
				t.Fatal(err)
			}
			s := q.Attach()
			defer s.Detach()
			capacity := q.Capacity()
			vs := make([]int, capacity+5)
			for i := range vs {
				vs[i] = i + 1
			}
			n, err := s.EnqueueBatch(vs)
			if n != capacity || !errors.Is(err, nbqueue.ErrFull) {
				t.Fatalf("EnqueueBatch over capacity = %d,%v want %d,ErrFull", n, err, capacity)
			}
			// Drain two, retry the remainder: vs[n:] continues seamlessly.
			if got := s.TryDrain(2); len(got) != 2 || got[0] != 1 {
				t.Fatalf("TryDrain(2) = %v", got)
			}
			n2, err := s.EnqueueBatch(vs[n:])
			if n2 != 2 || !errors.Is(err, nbqueue.ErrFull) {
				t.Fatalf("retry batch = %d,%v want 2,ErrFull", n2, err)
			}
			want := 3 // 1,2 drained; FIFO resumes at 3
			for {
				v, ok := s.Dequeue()
				if !ok {
					break
				}
				if v != want {
					t.Fatalf("drain = %d want %d", v, want)
				}
				want++
			}
			if want != n+n2+1 {
				t.Fatalf("drained up to %d, want %d", want-1, n+n2)
			}
		})
	}
}

// TestLenBoundsUnderBatchRace: Len must stay within [0, capacity] while
// racing batch producers and consumers move the depth by whole batches.
func TestLenBoundsUnderBatchRace(t *testing.T) {
	q, err := nbqueue.New[int](
		nbqueue.WithAlgorithm(nbqueue.AlgorithmCAS),
		nbqueue.WithCapacity(128),
		nbqueue.WithMaxThreads(8),
	)
	if err != nil {
		t.Fatal(err)
	}
	capacity := q.Capacity()
	var stop atomic.Bool
	var wg sync.WaitGroup
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			s := q.Attach()
			defer s.Detach()
			vs := make([]int, 32)
			next := p * 1_000_000
			for !stop.Load() {
				for i := range vs {
					vs[i] = next
					next++
				}
				s.EnqueueBatch(vs)
			}
		}(p)
	}
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := q.Attach()
			defer s.Detach()
			dst := make([]int, 32)
			for !stop.Load() {
				s.DequeueBatch(dst)
			}
		}()
	}
	for i := 0; i < 5000; i++ {
		n, ok := q.Len()
		if !ok {
			t.Fatal("Len unsupported on AlgorithmCAS")
		}
		if n < 0 || n > capacity {
			stop.Store(true)
			t.Fatalf("Len = %d outside [0, %d]", n, capacity)
		}
	}
	stop.Store(true)
	wg.Wait()
}

// TestRawBatch drives the word-level batch helpers through NewRaw.
func TestRawBatch(t *testing.T) {
	q, err := nbqueue.NewRaw(nbqueue.WithCapacity(64))
	if err != nil {
		t.Fatal(err)
	}
	s := q.Attach()
	defer s.Detach()
	if _, ok := s.(nbqueue.RawBatchSession); !ok {
		t.Fatal("default algorithm session lacks native batch support")
	}
	vs := []uint64{2, 4, 6, 8}
	if n, err := nbqueue.RawEnqueueBatch(s, vs); n != 4 || err != nil {
		t.Fatalf("RawEnqueueBatch = %d,%v", n, err)
	}
	dst := make([]uint64, 8)
	n, err := nbqueue.RawDequeueBatch(s, dst)
	if n != 4 || err != nil {
		t.Fatalf("RawDequeueBatch = %d,%v", n, err)
	}
	for i, v := range vs {
		if dst[i] != v {
			t.Fatalf("dst[%d] = %d want %d", i, dst[i], v)
		}
	}
	// Odd values violate the raw word contract and must be rejected
	// before any element is enqueued.
	if n, err := nbqueue.RawEnqueueBatch(s, []uint64{2, 3}); n != 0 || !errors.Is(err, nbqueue.ErrRawValue) {
		t.Fatalf("odd raw value = %d,%v want 0,ErrRawValue", n, err)
	}
}

// TestBatchSizesMetric checks the batch-size histogram accessor, both
// on a batch-native algorithm (recorded inside the word-level call) and
// on a fallback algorithm (recorded by the generic layer around its
// loop of singles).
func TestBatchSizesMetric(t *testing.T) {
	for _, algo := range []nbqueue.Algorithm{
		nbqueue.AlgorithmCAS,      // native batch session
		nbqueue.AlgorithmMSHazard, // generic fallback loop
	} {
		t.Run(string(algo), func(t *testing.T) {
			m := nbqueue.NewMetrics()
			q, err := nbqueue.New[int](nbqueue.WithAlgorithm(algo),
				nbqueue.WithCapacity(64), nbqueue.WithMetrics(m))
			if err != nil {
				t.Fatal(err)
			}
			s := q.Attach()
			defer s.Detach()
			vs := make([]int, 16)
			if _, err := s.EnqueueBatch(vs); err != nil {
				t.Fatal(err)
			}
			dst := make([]int, 32)
			if _, err := s.DequeueBatch(dst); err != nil {
				t.Fatal(err)
			}
			if h := m.BatchSizes(nbqueue.Enqueue); h.Count() != 1 || h.Max() != 16 {
				t.Fatalf("enqueue batch sizes: count=%d max=%d want 1,16", h.Count(), h.Max())
			}
			// The dequeue batch recorded what it drained (16), not len(dst).
			if h := m.BatchSizes(nbqueue.Dequeue); h.Count() != 1 || h.Max() != 16 {
				t.Fatalf("dequeue batch sizes: count=%d max=%d want 1,16", h.Count(), h.Max())
			}
		})
	}
}

// BenchmarkBatchVsLooped compares one EnqueueBatch(64)+DequeueBatch(64)
// round against 64 looped Enqueue+Dequeue pairs. Both variants move 128
// elements per iteration, so ns/op is directly comparable and the ratio
// is the batch amortization factor (CI's batch-compare job tracks it).
func BenchmarkBatchVsLooped(b *testing.B) {
	const size = 64
	mk := func(b *testing.B) *nbqueue.Session[int] {
		q, err := nbqueue.New[int](nbqueue.WithCapacity(4096))
		if err != nil {
			b.Fatal(err)
		}
		s := q.Attach()
		b.Cleanup(s.Detach)
		return s
	}
	b.Run("EnqueueBatch64", func(b *testing.B) {
		s := mk(b)
		vs := make([]int, size)
		dst := make([]int, size)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if n, err := s.EnqueueBatch(vs); n != size || err != nil {
				b.Fatalf("EnqueueBatch = %d,%v", n, err)
			}
			if n, err := s.DequeueBatch(dst); n != size || err != nil {
				b.Fatalf("DequeueBatch = %d,%v", n, err)
			}
		}
	})
	b.Run("Looped64", func(b *testing.B) {
		s := mk(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for k := 0; k < size; k++ {
				if err := s.Enqueue(k); err != nil {
					b.Fatal(err)
				}
			}
			for k := 0; k < size; k++ {
				if _, ok := s.Dequeue(); !ok {
					b.Fatal("empty")
				}
			}
		}
	})
}

// benchNewPublic builds the default public queue for benchmarks.
func benchNewPublic[T any]() (*nbqueue.Queue[T], error) {
	return nbqueue.New[T](nbqueue.WithCapacity(1024))
}
