package nbqueue_test

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"nbqueue"
)

// allAlgorithms lists every concurrent algorithm exposed by the public
// API.
var allAlgorithms = []nbqueue.Algorithm{
	nbqueue.AlgorithmLLSC,
	nbqueue.AlgorithmCAS,
	nbqueue.AlgorithmSegmented,
	nbqueue.AlgorithmMSHazard,
	nbqueue.AlgorithmMSHazardSorted,
	nbqueue.AlgorithmMSDoherty,
	nbqueue.AlgorithmShann,
	nbqueue.AlgorithmTsigasZhang,
	nbqueue.AlgorithmTwoLock,
	nbqueue.AlgorithmChannel,
}

func TestBasicRoundTripAllAlgorithms(t *testing.T) {
	for _, a := range allAlgorithms {
		t.Run(string(a), func(t *testing.T) {
			q, err := nbqueue.New[string](
				nbqueue.WithAlgorithm(a),
				nbqueue.WithCapacity(16),
				nbqueue.WithMaxThreads(4),
			)
			if err != nil {
				t.Fatal(err)
			}
			s := q.Attach()
			defer s.Detach()
			for i := 0; i < 100; i++ {
				in := fmt.Sprintf("msg-%d", i)
				if err := s.Enqueue(in); err != nil {
					t.Fatalf("enqueue %d: %v", i, err)
				}
				out, ok := s.Dequeue()
				if !ok || out != in {
					t.Fatalf("dequeue %d = %q,%v want %q", i, out, ok, in)
				}
			}
		})
	}
}

func TestStructPayload(t *testing.T) {
	type job struct {
		ID   int
		Name string
		Data []byte
	}
	q, err := nbqueue.New[job](nbqueue.WithCapacity(8))
	if err != nil {
		t.Fatal(err)
	}
	s := q.Attach()
	defer s.Detach()
	in := job{ID: 7, Name: "build", Data: []byte{1, 2, 3}}
	if err := s.Enqueue(in); err != nil {
		t.Fatal(err)
	}
	out, ok := s.Dequeue()
	if !ok || out.ID != 7 || out.Name != "build" || len(out.Data) != 3 {
		t.Fatalf("round trip mangled payload: %+v", out)
	}
}

func TestFullAndEmpty(t *testing.T) {
	q, err := nbqueue.New[int](nbqueue.WithCapacity(4), nbqueue.WithMaxThreads(1))
	if err != nil {
		t.Fatal(err)
	}
	s := q.Attach()
	defer s.Detach()
	if _, ok := s.Dequeue(); ok {
		t.Fatal("fresh queue not empty")
	}
	n := 0
	for ; ; n++ {
		if err := s.Enqueue(n); err != nil {
			if !errors.Is(err, nbqueue.ErrFull) {
				t.Fatalf("enqueue: %v", err)
			}
			break
		}
		if n > q.Capacity()+32 {
			t.Fatal("never became full")
		}
	}
	if n < 4 {
		t.Fatalf("full after %d items, want >= 4", n)
	}
	for i := 0; i < n; i++ {
		v, ok := s.Dequeue()
		if !ok || v != i {
			t.Fatalf("dequeue %d = %d,%v", i, v, ok)
		}
	}
}

func TestInvalidConfig(t *testing.T) {
	if _, err := nbqueue.New[int](nbqueue.WithCapacity(-1)); err == nil {
		t.Error("negative capacity accepted")
	}
	if _, err := nbqueue.New[int](nbqueue.WithAlgorithm("nope")); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if _, err := nbqueue.New[int](nbqueue.WithAlgorithm("seq")); err == nil {
		t.Error("non-concurrent algorithm accepted through the public API")
	}
}

func TestMetrics(t *testing.T) {
	m := nbqueue.NewMetrics()
	q, err := nbqueue.New[int](
		nbqueue.WithAlgorithm(nbqueue.AlgorithmCAS),
		nbqueue.WithCapacity(16),
		nbqueue.WithMetrics(m),
	)
	if err != nil {
		t.Fatal(err)
	}
	s := q.Attach()
	for i := 0; i < 100; i++ {
		if err := s.Enqueue(i); err != nil {
			t.Fatal(err)
		}
		if _, ok := s.Dequeue(); !ok {
			t.Fatal("empty")
		}
	}
	s.Detach()
	snap := m.Snapshot()
	if snap.Enqueues != 100 || snap.Dequeues != 100 || snap.Ops() != 200 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if c := snap.CASPerOp(); c < 2.9 || c > 3.1 {
		t.Errorf("CASPerOp = %.2f, want ~3 for Algorithm 2", c)
	}
	m.Reset()
	if m.Snapshot().Ops() != 0 {
		t.Error("reset did not clear")
	}
}

func TestConcurrentProducersConsumers(t *testing.T) {
	for _, a := range allAlgorithms {
		t.Run(string(a), func(t *testing.T) {
			q, err := nbqueue.New[int](
				nbqueue.WithAlgorithm(a),
				nbqueue.WithCapacity(128),
				nbqueue.WithMaxThreads(8),
			)
			if err != nil {
				t.Fatal(err)
			}
			const producers = 4
			const perProducer = 2000
			var wg sync.WaitGroup
			seen := make([]bool, producers*perProducer)
			var mu sync.Mutex
			for p := 0; p < producers; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					s := q.Attach()
					defer s.Detach()
					for i := 0; i < perProducer; i++ {
						for s.Enqueue(p*perProducer+i) != nil {
							runtime.Gosched()
						}
					}
				}(p)
			}
			for c := 0; c < 4; c++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					s := q.Attach()
					defer s.Detach()
					count := 0
					for count < perProducer {
						v, ok := s.Dequeue()
						if !ok {
							runtime.Gosched()
							continue
						}
						mu.Lock()
						if seen[v] {
							mu.Unlock()
							t.Errorf("value %d delivered twice", v)
							return
						}
						seen[v] = true
						mu.Unlock()
						count++
					}
				}()
			}
			wg.Wait()
			mu.Lock()
			defer mu.Unlock()
			for v, ok := range seen {
				if !ok {
					t.Fatalf("value %d lost", v)
				}
			}
		})
	}
}

func TestTryDrain(t *testing.T) {
	q, err := nbqueue.New[int](nbqueue.WithCapacity(16))
	if err != nil {
		t.Fatal(err)
	}
	s := q.Attach()
	defer s.Detach()
	for i := 0; i < 10; i++ {
		if err := s.Enqueue(i); err != nil {
			t.Fatal(err)
		}
	}
	first := s.TryDrain(3)
	if len(first) != 3 || first[0] != 0 || first[2] != 2 {
		t.Fatalf("TryDrain(3) = %v", first)
	}
	rest := s.TryDrain(0)
	if len(rest) != 7 || rest[0] != 3 || rest[6] != 9 {
		t.Fatalf("TryDrain(0) = %v", rest)
	}
}

func TestAlgorithmNames(t *testing.T) {
	q, err := nbqueue.New[int](nbqueue.WithAlgorithm(nbqueue.AlgorithmLLSC), nbqueue.WithCapacity(4))
	if err != nil {
		t.Fatal(err)
	}
	if q.Algorithm() != "FIFO Array LL/SC" {
		t.Errorf("Algorithm() = %q", q.Algorithm())
	}
	if q.Capacity() != 4 {
		t.Errorf("Capacity() = %d, want 4", q.Capacity())
	}
}

// TestPointerPayloadGC: pointer payloads must survive the handle round
// trip even under GC pressure (values are held in a GC-visible slice, so
// nothing is hidden from the collector).
func TestPointerPayloadGC(t *testing.T) {
	q, err := nbqueue.New[*string](nbqueue.WithCapacity(64))
	if err != nil {
		t.Fatal(err)
	}
	s := q.Attach()
	defer s.Detach()
	for i := 0; i < 32; i++ {
		v := fmt.Sprintf("payload-%d", i)
		if err := s.Enqueue(&v); err != nil {
			t.Fatal(err)
		}
	}
	runtime.GC()
	runtime.GC()
	for i := 0; i < 32; i++ {
		p, ok := s.Dequeue()
		if !ok || p == nil || *p != fmt.Sprintf("payload-%d", i) {
			t.Fatalf("payload %d corrupted: %v", i, p)
		}
	}
}

// benchNewPublic builds the default public queue for benchmarks.
func benchNewPublic[T any]() (*nbqueue.Queue[T], error) {
	return nbqueue.New[T](nbqueue.WithCapacity(1024))
}
