package nbqueue_test

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nbqueue"
)

// fillTo enqueues values until the queue holds n items.
func fillTo(t *testing.T, s *nbqueue.Session[int], n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := s.Enqueue(i); err != nil {
			t.Fatalf("fill enqueue %d: %v", i, err)
		}
	}
}

func TestWatermarkAdmission(t *testing.T) {
	m := nbqueue.NewMetrics()
	var events []nbqueue.Event
	var mu sync.Mutex
	q, err := nbqueue.New[int](
		nbqueue.WithAlgorithm(nbqueue.AlgorithmCAS),
		nbqueue.WithCapacity(16),
		nbqueue.WithWatermarks(4, 8),
		nbqueue.WithMetrics(m),
		nbqueue.WithEventHook(func(e nbqueue.Event) {
			mu.Lock()
			events = append(events, e)
			mu.Unlock()
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	s := q.Attach()
	defer s.Detach()

	// Below the high watermark everything is admitted.
	fillTo(t, s, 8)
	if q.Overloaded() {
		t.Fatal("overloaded before any enqueue observed depth >= high")
	}

	// Depth is now 8 == high: the next enqueue trips admission control.
	if err := s.Enqueue(99); !errors.Is(err, nbqueue.ErrOverloaded) {
		t.Fatalf("enqueue at high watermark = %v, want ErrOverloaded", err)
	}
	if !q.Overloaded() {
		t.Fatal("Overloaded() = false after the enter transition")
	}
	if n, err := s.EnqueueBatch([]int{1, 2, 3}); n != 0 || !errors.Is(err, nbqueue.ErrOverloaded) {
		t.Fatalf("EnqueueBatch while overloaded = (%d, %v), want (0, ErrOverloaded)", n, err)
	}

	// Hysteresis: draining to above-low keeps shedding.
	for i := 0; i < 3; i++ { // depth 8 -> 5
		if _, ok := s.Dequeue(); !ok {
			t.Fatal("drain dequeue reported empty")
		}
	}
	if err := s.Enqueue(99); !errors.Is(err, nbqueue.ErrOverloaded) {
		t.Fatalf("enqueue above low watermark = %v, want ErrOverloaded (hysteresis)", err)
	}

	// At or below low: re-admitted.
	if _, ok := s.Dequeue(); !ok { // depth 4
		t.Fatal("drain dequeue reported empty")
	}
	if err := s.Enqueue(100); err != nil {
		t.Fatalf("enqueue after drain below low = %v, want admitted", err)
	}
	if q.Overloaded() {
		t.Fatal("Overloaded() = true after the exit transition")
	}

	snap := m.Snapshot()
	if snap.OverloadSheds < 3 {
		t.Fatalf("OverloadSheds = %d, want >= 3", snap.OverloadSheds)
	}
	mu.Lock()
	defer mu.Unlock()
	var enter, exit int
	for _, e := range events {
		switch e.Kind {
		case nbqueue.EventOverloadEnter:
			enter++
		case nbqueue.EventOverloadExit:
			exit++
		}
	}
	if enter != 1 || exit != 1 {
		t.Fatalf("overload transitions = %d enter / %d exit, want 1/1", enter, exit)
	}
}

func TestWatermarkValidation(t *testing.T) {
	cases := []struct {
		name string
		opts []nbqueue.Option
	}{
		{"zero low", []nbqueue.Option{nbqueue.WithWatermarks(0, 8)}},
		{"low above high", []nbqueue.Option{nbqueue.WithWatermarks(9, 8)}},
		{"no depth observation", []nbqueue.Option{
			nbqueue.WithAlgorithm(nbqueue.AlgorithmMSHazard),
			nbqueue.WithWatermarks(4, 8),
		}},
	}
	for _, tc := range cases {
		if _, err := nbqueue.New[int](tc.opts...); err == nil {
			t.Errorf("%s: New accepted invalid watermark config", tc.name)
		}
	}
	if _, err := nbqueue.NewRaw(nbqueue.WithWatermarks(4, 8)); err == nil {
		t.Error("NewRaw accepted WithWatermarks")
	}
}

// TestWatermarkShedsUnderOverload drives producers at well past the
// consumer's rate and checks admission control actually bounds the
// depth near the high watermark instead of letting the queue fill to
// capacity.
func TestWatermarkShedsUnderOverload(t *testing.T) {
	m := nbqueue.NewMetrics()
	q, err := nbqueue.New[int](
		nbqueue.WithAlgorithm(nbqueue.AlgorithmCAS),
		nbqueue.WithCapacity(1024),
		nbqueue.WithWatermarks(64, 256),
		nbqueue.WithMetrics(m),
	)
	if err != nil {
		t.Fatal(err)
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := q.Attach()
			defer s.Detach()
			for i := 0; !stop.Load(); i++ {
				_ = s.Enqueue(i)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		s := q.Attach()
		defer s.Detach()
		for !stop.Load() {
			if _, ok := s.Dequeue(); !ok {
				time.Sleep(10 * time.Microsecond)
			}
			// Consumer is deliberately slower than four producers.
			time.Sleep(time.Microsecond)
		}
	}()
	time.Sleep(200 * time.Millisecond)
	stop.Store(true)
	wg.Wait()

	snap := m.Snapshot()
	if snap.OverloadSheds == 0 {
		t.Fatal("no enqueues were shed under 4x overload")
	}
	// In-flight racing enqueues can overshoot high, but not by more than
	// the producer count times a few; capacity-level depth would mean
	// admission control never engaged.
	if n, ok := q.Len(); !ok || n > 512 {
		t.Fatalf("final depth = %d (ok=%v), want bounded near high watermark 256", n, ok)
	}
}

func TestWaitDeadlinePropagation(t *testing.T) {
	q, err := nbqueue.New[int](
		nbqueue.WithAlgorithm(nbqueue.AlgorithmCAS),
		nbqueue.WithCapacity(4),
	)
	if err != nil {
		t.Fatal(err)
	}
	s := q.Attach()
	defer s.Detach()
	fillTo(t, s, 4)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	if err := s.EnqueueWait(ctx, 99); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("EnqueueWait on full queue = %v, want DeadlineExceeded", err)
	}
	if e := time.Since(start); e > 5*time.Second {
		t.Fatalf("EnqueueWait deadline took %v", e)
	}

	// The armed word-level deadline must not leak into later operations.
	if _, ok := s.Dequeue(); !ok {
		t.Fatal("dequeue after expired wait reported empty")
	}
	if err := s.Enqueue(5); err != nil {
		t.Fatalf("enqueue after expired wait: %v", err)
	}

	ctx2, cancel2 := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel2()
	s.TryDrain(0)
	if _, err := s.DequeueWait(ctx2); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("DequeueWait on empty queue = %v, want DeadlineExceeded", err)
	}
}

func TestSessionSetDeadline(t *testing.T) {
	q, err := nbqueue.New[int](nbqueue.WithAlgorithm(nbqueue.AlgorithmLLSC))
	if err != nil {
		t.Fatal(err)
	}
	s := q.Attach()
	defer s.Detach()
	if !s.SetDeadline(time.Now().Add(time.Hour)) {
		t.Fatal("AlgorithmLLSC session should support deadlines")
	}
	// A generous future deadline leaves operation behaviour unchanged.
	if err := s.Enqueue(7); err != nil {
		t.Fatal(err)
	}
	if v, ok := s.Dequeue(); !ok || v != 7 {
		t.Fatalf("Dequeue = (%d, %v)", v, ok)
	}
	s.SetDeadline(time.Time{})

	// A baseline algorithm reports no deadline support.
	qb, err := nbqueue.New[int](nbqueue.WithAlgorithm(nbqueue.AlgorithmMSHazard))
	if err != nil {
		t.Fatal(err)
	}
	sb := qb.Attach()
	defer sb.Detach()
	if sb.SetDeadline(time.Now()) {
		t.Fatal("AlgorithmMSHazard session should not claim deadline support")
	}
}

func TestEnqueueBatchWaitDrainsThrough(t *testing.T) {
	q, err := nbqueue.New[int](
		nbqueue.WithAlgorithm(nbqueue.AlgorithmCAS),
		nbqueue.WithCapacity(4),
	)
	if err != nil {
		t.Fatal(err)
	}
	const total = 64
	vs := make([]int, total)
	for i := range vs {
		vs[i] = i
	}
	got := make([]int, 0, total)
	done := make(chan struct{})
	go func() {
		defer close(done)
		s := q.Attach()
		defer s.Detach()
		dst := make([]int, 8)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		for len(got) < total {
			n, err := s.DequeueBatchWait(ctx, dst)
			if err != nil {
				panic(err)
			}
			got = append(got, dst[:n]...)
		}
	}()

	s := q.Attach()
	defer s.Detach()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	n, err := s.EnqueueBatchWait(ctx, vs)
	if n != total || err != nil {
		t.Fatalf("EnqueueBatchWait = (%d, %v), want (%d, nil)", n, err, total)
	}
	<-done
	for i, v := range got {
		if v != i {
			t.Fatalf("got[%d] = %d, want %d (FIFO violated)", i, v, i)
		}
	}
}

func TestBatchWaitHonorsContext(t *testing.T) {
	q, err := nbqueue.New[int](
		nbqueue.WithAlgorithm(nbqueue.AlgorithmCAS),
		nbqueue.WithCapacity(4),
	)
	if err != nil {
		t.Fatal(err)
	}
	s := q.Attach()
	defer s.Detach()
	fillTo(t, s, 4)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	n, err := s.EnqueueBatchWait(ctx, []int{1, 2, 3})
	if n != 0 || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("EnqueueBatchWait on full queue = (%d, %v), want (0, DeadlineExceeded)", n, err)
	}

	s.TryDrain(0)
	ctx2, cancel2 := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel2()
	dst := make([]int, 3)
	n, err = s.DequeueBatchWait(ctx2, dst)
	if n != 0 || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("DequeueBatchWait on empty queue = (%d, %v), want (0, DeadlineExceeded)", n, err)
	}
}

// TestEventHookRacesDetach hammers shed-path event delivery concurrently
// with session detach/reattach churn; run under -race it proves hook
// invocation never races session teardown.
func TestEventHookRacesDetach(t *testing.T) {
	var fired atomic.Uint64
	q, err := nbqueue.New[int](
		nbqueue.WithAlgorithm(nbqueue.AlgorithmCAS),
		nbqueue.WithCapacity(8),
		nbqueue.WithWatermarks(2, 4),
		nbqueue.WithRetryBudget(4),
		nbqueue.WithEventHook(func(e nbqueue.Event) {
			fired.Add(1)
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				s := q.Attach()
				// Production outweighs consumption so the watermark
				// flaps, firing shed events while other goroutines are
				// mid-Detach.
				if w%2 == 0 {
					_ = s.Enqueue(i)
					_ = s.Enqueue(i)
					_, _, _ = s.TryDequeue()
				} else {
					_, _ = s.EnqueueBatch([]int{1, 2})
					_, _ = s.DequeueBatch(make([]int, 1))
				}
				s.Detach()
			}
		}(w)
	}
	time.Sleep(150 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	if fired.Load() == 0 {
		t.Fatal("event hook never fired under overload churn")
	}
}
