package nbqueue

import (
	"fmt"

	"nbqueue/internal/queue"
)

// RawQueue is the word-level queue interface: values are bare uint64
// words subject to the contract below, with no payload mapping layer on
// top. It is the zero-overhead path for callers that manage their own
// value encoding (e.g. indices into caller-owned storage).
type RawQueue = queue.Queue

// RawSession is a RawQueue's per-goroutine handle.
type RawSession = queue.Session

// RawMaxValue is the largest legal raw value. Legal values are even,
// nonzero and at most RawMaxValue: 0 is the algorithms' empty-slot
// marker, odd values are Algorithm 2's reservation-tag space, and the
// upper bound keeps values inside the LL/SC emulation's packed field.
// Enqueue returns an error for values outside the contract.
const RawMaxValue = queue.MaxValue

// ErrRawValue reports a raw value outside the word contract.
var ErrRawValue = queue.ErrValue

// RawBatchSession is implemented by sessions with native batch
// operations — the Evequoz-family algorithms, which reserve a whole
// range of slots with a single head/tail RMW per batch. Use the
// RawEnqueueBatch/RawDequeueBatch helpers to get the native path when
// present and a single-op loop otherwise.
type RawBatchSession = queue.BatchSession

// RawBatch is the batch view of a RawSession — the word-level analogue
// of Session.EnqueueBatch/DequeueBatch, fixing the old asymmetry where
// the generic layer had batch methods but the raw layer only had free
// functions. Build one per session with Batch; the wrapper is a value
// (one word) and carries no state of its own, so it is free to construct
// and copies share the underlying session. Like the session it wraps,
// a RawBatch must be used by one goroutine only.
type RawBatch struct {
	s RawSession
}

// Batch returns the batch view of s. The native single-RMW batch path
// is used when s implements RawBatchSession (the Evequoz-family
// algorithms); otherwise the methods loop over single operations with
// identical semantics.
func Batch(s RawSession) RawBatch { return RawBatch{s: s} }

// Session returns the wrapped session.
func (b RawBatch) Session() RawSession { return b.s }

// Enqueue inserts the values of vs, in order, at the tail, returning
// how many took effect. A batch is not atomic: each element linearizes
// individually, in slice order. On ErrFull or ErrContended the first n
// values went in and the rest had no effect (retry with vs[n:]); a
// contract violation in any element returns (0, ErrRawValue) before
// anything is enqueued.
func (b RawBatch) Enqueue(vs []uint64) (int, error) {
	return queue.EnqueueBatch(b.s, vs)
}

// Dequeue removes up to len(dst) values from the head into dst,
// returning how many it filled. n < len(dst) with a nil error means the
// queue was observed empty after n elements; ErrContended reports a
// retry budget running out (the queue may be nonempty). dst[:n] is
// valid in every case.
func (b RawBatch) Dequeue(dst []uint64) (int, error) {
	return queue.DequeueBatch(b.s, dst)
}

// RawEnqueueBatch enqueues the values of vs in order through s.
//
// Deprecated: use Batch(s).Enqueue(vs) — the RawBatch methods are the
// documented batch surface; this alias delegates to it.
func RawEnqueueBatch(s RawSession, vs []uint64) (int, error) {
	return Batch(s).Enqueue(vs)
}

// RawDequeueBatch dequeues up to len(dst) values through s into dst.
//
// Deprecated: use Batch(s).Dequeue(dst) — the RawBatch methods are the
// documented batch surface; this alias delegates to it.
func RawDequeueBatch(s RawSession, dst []uint64) (int, error) {
	return Batch(s).Dequeue(dst)
}

// NewRaw builds a word-level queue with the same options as New. The
// payload arena and values table of Queue[T] are skipped entirely; each
// enqueue/dequeue moves exactly one machine word. WithWatermarks is not
// supported here — admission control lives in the payload layer — and is
// rejected rather than silently dropped.
func NewRaw(opts ...Option) (RawQueue, error) {
	inner, c, err := newInner(opts)
	if err != nil {
		return nil, err
	}
	if c.wmSet {
		return nil, fmt.Errorf("nbqueue: WithWatermarks requires the generic New layer; NewRaw has no admission hook")
	}
	return inner, nil
}
