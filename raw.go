package nbqueue

import (
	"nbqueue/internal/queue"
)

// RawQueue is the word-level queue interface: values are bare uint64
// words subject to the contract below, with no payload mapping layer on
// top. It is the zero-overhead path for callers that manage their own
// value encoding (e.g. indices into caller-owned storage).
type RawQueue = queue.Queue

// RawSession is a RawQueue's per-goroutine handle.
type RawSession = queue.Session

// RawMaxValue is the largest legal raw value. Legal values are even,
// nonzero and at most RawMaxValue: 0 is the algorithms' empty-slot
// marker, odd values are Algorithm 2's reservation-tag space, and the
// upper bound keeps values inside the LL/SC emulation's packed field.
// Enqueue returns an error for values outside the contract.
const RawMaxValue = queue.MaxValue

// ErrRawValue reports a raw value outside the word contract.
var ErrRawValue = queue.ErrValue

// NewRaw builds a word-level queue with the same options as New. The
// payload arena and values table of Queue[T] are skipped entirely; each
// enqueue/dequeue moves exactly one machine word.
func NewRaw(opts ...Option) (RawQueue, error) {
	inner, _, err := newInner(opts)
	return inner, err
}
