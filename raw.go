package nbqueue

import (
	"fmt"

	"nbqueue/internal/queue"
)

// RawQueue is the word-level queue interface: values are bare uint64
// words subject to the contract below, with no payload mapping layer on
// top. It is the zero-overhead path for callers that manage their own
// value encoding (e.g. indices into caller-owned storage).
type RawQueue = queue.Queue

// RawSession is a RawQueue's per-goroutine handle.
type RawSession = queue.Session

// RawMaxValue is the largest legal raw value. Legal values are even,
// nonzero and at most RawMaxValue: 0 is the algorithms' empty-slot
// marker, odd values are Algorithm 2's reservation-tag space, and the
// upper bound keeps values inside the LL/SC emulation's packed field.
// Enqueue returns an error for values outside the contract.
const RawMaxValue = queue.MaxValue

// ErrRawValue reports a raw value outside the word contract.
var ErrRawValue = queue.ErrValue

// RawBatchSession is implemented by sessions with native batch
// operations — the Evequoz-family algorithms, which reserve a whole
// range of slots with a single head/tail RMW per batch. Use the
// RawEnqueueBatch/RawDequeueBatch helpers to get the native path when
// present and a single-op loop otherwise.
type RawBatchSession = queue.BatchSession

// RawEnqueueBatch enqueues the values of vs in order through s, using
// the native batch operation when s implements RawBatchSession and a
// loop of single enqueues otherwise. Partial-batch semantics match
// Session.EnqueueBatch: on error the first n values went in, the rest
// had no effect.
func RawEnqueueBatch(s RawSession, vs []uint64) (int, error) {
	return queue.EnqueueBatch(s, vs)
}

// RawDequeueBatch dequeues up to len(dst) values through s into dst,
// native when available. dst[:n] is valid even alongside ErrContended.
func RawDequeueBatch(s RawSession, dst []uint64) (int, error) {
	return queue.DequeueBatch(s, dst)
}

// NewRaw builds a word-level queue with the same options as New. The
// payload arena and values table of Queue[T] are skipped entirely; each
// enqueue/dequeue moves exactly one machine word. WithWatermarks is not
// supported here — admission control lives in the payload layer — and is
// rejected rather than silently dropped.
func NewRaw(opts ...Option) (RawQueue, error) {
	inner, c, err := newInner(opts)
	if err != nil {
		return nil, err
	}
	if c.wmSet {
		return nil, fmt.Errorf("nbqueue: WithWatermarks requires the generic New layer; NewRaw has no admission hook")
	}
	return inner, nil
}
