package nbqueue_test

import (
	"errors"
	"runtime"
	"sync"
	"testing"

	"nbqueue"
)

func TestRawRoundTrip(t *testing.T) {
	q, err := nbqueue.NewRaw(
		nbqueue.WithAlgorithm(nbqueue.AlgorithmLLSC),
		nbqueue.WithCapacity(8),
	)
	if err != nil {
		t.Fatal(err)
	}
	s := q.Attach()
	defer s.Detach()
	for i := uint64(1); i <= 100; i++ {
		v := i << 1
		if err := s.Enqueue(v); err != nil {
			t.Fatalf("enqueue %d: %v", i, err)
		}
		got, ok := s.Dequeue()
		if !ok || got != v {
			t.Fatalf("dequeue = %#x,%v want %#x", got, ok, v)
		}
	}
}

func TestRawValueContract(t *testing.T) {
	q, err := nbqueue.NewRaw(nbqueue.WithCapacity(8))
	if err != nil {
		t.Fatal(err)
	}
	s := q.Attach()
	defer s.Detach()
	for _, bad := range []uint64{0, 1, 5, nbqueue.RawMaxValue + 2} {
		if err := s.Enqueue(bad); !errors.Is(err, nbqueue.ErrRawValue) {
			t.Errorf("Enqueue(%#x) = %v, want ErrRawValue", bad, err)
		}
	}
	if err := s.Enqueue(nbqueue.RawMaxValue - 1); err != nil {
		t.Errorf("max legal value rejected: %v", err)
	}
}

func TestRawRejectsBadConfig(t *testing.T) {
	if _, err := nbqueue.NewRaw(nbqueue.WithAlgorithm("nope")); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if _, err := nbqueue.NewRaw(nbqueue.WithCapacity(-1)); err == nil {
		t.Error("bad capacity accepted")
	}
	if _, err := nbqueue.NewRaw(nbqueue.WithAlgorithm("seq")); err == nil {
		t.Error("non-concurrent algorithm accepted")
	}
}

func TestRawMetricsFlow(t *testing.T) {
	m := nbqueue.NewMetrics()
	q, err := nbqueue.NewRaw(
		nbqueue.WithAlgorithm(nbqueue.AlgorithmCAS),
		nbqueue.WithCapacity(16),
		nbqueue.WithMetrics(m),
	)
	if err != nil {
		t.Fatal(err)
	}
	s := q.Attach()
	for i := uint64(1); i <= 50; i++ {
		if err := s.Enqueue(i << 1); err != nil {
			t.Fatal(err)
		}
		s.Dequeue()
	}
	s.Detach()
	if m.Snapshot().Ops() != 100 {
		t.Fatalf("ops = %d, want 100", m.Snapshot().Ops())
	}
}

func TestRawConcurrent(t *testing.T) {
	q, err := nbqueue.NewRaw(nbqueue.WithCapacity(64), nbqueue.WithMaxThreads(8))
	if err != nil {
		t.Fatal(err)
	}
	const producers = 4
	const per = 1000
	var wg sync.WaitGroup
	var got sync.Map
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			s := q.Attach()
			defer s.Detach()
			for i := 0; i < per; i++ {
				v := uint64(p*per+i+1) << 1
				for s.Enqueue(v) != nil {
					runtime.Gosched()
				}
			}
		}(p)
	}
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := q.Attach()
			defer s.Detach()
			for n := 0; n < producers*per/2; n++ {
				v, ok := s.Dequeue()
				for !ok {
					runtime.Gosched()
					v, ok = s.Dequeue()
				}
				if _, dup := got.LoadOrStore(v, true); dup {
					t.Errorf("value %#x delivered twice", v)
					return
				}
			}
		}()
	}
	wg.Wait()
	count := 0
	got.Range(func(any, any) bool { count++; return true })
	if count != producers*per {
		t.Fatalf("delivered %d values, want %d", count, producers*per)
	}
}
