package nbqueue_test

// Public-API tests of AlgorithmSegmented: the unbounded mode, the
// high-water soft cap, the Segments/Len observers, the grow event, and
// the segment-lifecycle counters through Metrics and the exporter.

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"nbqueue"
)

func TestSegmentedUnboundedAbsorbsBurst(t *testing.T) {
	q, err := nbqueue.New[int](
		nbqueue.WithAlgorithm(nbqueue.AlgorithmSegmented),
		nbqueue.WithUnbounded(),
		nbqueue.WithSegmentSize(16),
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := q.Capacity(); got != 0 {
		t.Fatalf("Capacity() = %d for an unbounded queue, want 0", got)
	}
	s := q.Attach()
	defer s.Detach()
	// Far past any single segment: an unbounded queue must never shed.
	const burst = 5000
	for i := 0; i < burst; i++ {
		if err := s.Enqueue(i); err != nil {
			t.Fatalf("unbounded enqueue %d: %v", i, err)
		}
	}
	if n, ok := q.Len(); !ok || n != burst {
		t.Fatalf("Len() = %d, %v after %d enqueues, want exact at quiescence", n, ok, burst)
	}
	if segs, ok := q.Segments(); !ok || segs < burst/16 {
		t.Fatalf("Segments() = %d, %v; %d items over 16-slot rings need >= %d", segs, ok, burst, burst/16)
	}
	for i := 0; i < burst; i++ {
		v, ok := s.Dequeue()
		if !ok || v != i {
			t.Fatalf("dequeue %d = %d, %v", i, v, ok)
		}
	}
	if segs, ok := q.Segments(); !ok || segs != 1 {
		t.Fatalf("Segments() = %d, %v after full drain, want 1", segs, ok)
	}
}

func TestSegmentedHighWaterSoftCap(t *testing.T) {
	q, err := nbqueue.New[int](
		nbqueue.WithAlgorithm(nbqueue.AlgorithmSegmented),
		nbqueue.WithCapacity(64),
		nbqueue.WithSegmentSize(16),
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := q.Capacity(); got != 64 {
		t.Fatalf("Capacity() = %d, want the high-water mark 64", got)
	}
	s := q.Attach()
	defer s.Detach()
	accepted := 0
	for i := 0; ; i++ {
		if err := s.Enqueue(i); err != nil {
			if err != nbqueue.ErrFull {
				t.Fatalf("enqueue %d: %v", i, err)
			}
			break
		}
		accepted++
		if accepted > 200 {
			t.Fatal("high-water cap never triggered")
		}
	}
	if accepted != 64 {
		t.Fatalf("soft cap accepted %d items, want exactly 64", accepted)
	}
	if _, ok := s.Dequeue(); !ok {
		t.Fatal("dequeue reported empty at the cap")
	}
	if err := s.Enqueue(1000); err != nil {
		t.Fatalf("enqueue after drain-one: %v", err)
	}
}

func TestSegmentedUnboundedRequiresSegmented(t *testing.T) {
	_, err := nbqueue.New[int](
		nbqueue.WithAlgorithm(nbqueue.AlgorithmCAS),
		nbqueue.WithUnbounded(),
	)
	if err == nil {
		t.Fatal("WithUnbounded on AlgorithmCAS did not error")
	}
	if !strings.Contains(err.Error(), "WithUnbounded") {
		t.Fatalf("error %q does not name the offending option", err)
	}
}

func TestSegmentedGrowEvent(t *testing.T) {
	var grows atomic.Int64
	var lastLive atomic.Int64
	q, err := nbqueue.New[int](
		nbqueue.WithAlgorithm(nbqueue.AlgorithmSegmented),
		nbqueue.WithUnbounded(),
		nbqueue.WithSegmentSize(16),
		nbqueue.WithEventHook(func(e nbqueue.Event) {
			if e.Kind == nbqueue.EventSegmentGrow {
				grows.Add(1)
				lastLive.Store(int64(e.N))
				if e.Algorithm == "" {
					t.Error("grow event missing algorithm name")
				}
			}
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	s := q.Attach()
	defer s.Detach()
	for i := 0; i < 100; i++ {
		if err := s.Enqueue(i); err != nil {
			t.Fatal(err)
		}
	}
	if g := grows.Load(); g < 5 {
		t.Fatalf("100 items over 16-slot rings fired %d grow events, want >= 5", g)
	}
	if l := lastLive.Load(); l < 2 {
		t.Fatalf("last grow event reported %d live segments, want >= 2", l)
	}
	if e := nbqueue.EventSegmentGrow.String(); e != "segment-grow" {
		t.Fatalf("EventSegmentGrow.String() = %q", e)
	}
}

func TestSegmentedMetricsCounters(t *testing.T) {
	m := nbqueue.NewMetrics()
	q, err := nbqueue.New[int](
		nbqueue.WithAlgorithm(nbqueue.AlgorithmSegmented),
		nbqueue.WithUnbounded(),
		nbqueue.WithSegmentSize(16),
		nbqueue.WithMetrics(m),
	)
	if err != nil {
		t.Fatal(err)
	}
	s := q.Attach()
	// Several fill/drain cycles so segments retire and recycle.
	for c := 0; c < 10; c++ {
		for i := 0; i < 50; i++ {
			if err := s.Enqueue(c*50 + i); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 50; i++ {
			if _, ok := s.Dequeue(); !ok {
				t.Fatal("premature empty")
			}
		}
	}
	s.Detach()
	snap := m.Snapshot()
	if snap.Enqueues != 500 || snap.Dequeues != 500 {
		t.Fatalf("ops = %d/%d, want 500/500", snap.Enqueues, snap.Dequeues)
	}
	if snap.SegmentRetires < 10 {
		t.Errorf("SegmentRetires = %d across 10 drain cycles, want >= 10", snap.SegmentRetires)
	}
	if snap.SegmentRecycles == 0 {
		t.Error("SegmentRecycles = 0; the free list never engaged")
	}
	if snap.SegmentAllocs == 0 || snap.SegmentAllocs > 16 {
		t.Errorf("SegmentAllocs = %d, want a small nonzero count", snap.SegmentAllocs)
	}
	d := snap.Delta(nbqueue.Snapshot{})
	if d.SegmentRetires != snap.SegmentRetires || d.SegmentRecycles != snap.SegmentRecycles {
		t.Error("Delta dropped the segment counters")
	}
}

func TestSegmentedExporterSeries(t *testing.T) {
	m := nbqueue.NewMetrics()
	q, err := nbqueue.New[int](
		nbqueue.WithAlgorithm(nbqueue.AlgorithmSegmented),
		nbqueue.WithUnbounded(),
		nbqueue.WithSegmentSize(16),
		nbqueue.WithMetrics(m),
	)
	if err != nil {
		t.Fatal(err)
	}
	s := q.Attach()
	for i := 0; i < 100; i++ {
		if err := s.Enqueue(i); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		s.Dequeue()
	}
	s.Detach()
	e := nbqueue.NewExporter(m, map[string]string{"algorithm": q.Algorithm()})
	e.AddGauge("segments", "Live ring segments.", func() float64 {
		n, _ := q.Segments()
		return float64(n)
	})
	var sb strings.Builder
	if err := e.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, series := range []string{
		"nbq_segments_allocated_total",
		"nbq_segments_recycled_total",
		"nbq_segments_retired_total",
		"nbq_segments{",
	} {
		if !strings.Contains(text, series) {
			t.Errorf("exposition missing %s", series)
		}
	}
	if strings.Contains(text, "nbq_segments_retired_total{algorithm=\"FIFO Array Segmented\"} 0") {
		t.Error("segments_retired_total stuck at 0 after 100-item drain over 16-slot rings")
	}
}

// TestSegmentedConcurrentBurstDrain hammers the public API across
// segment boundaries: producers burst far past a single segment while
// consumers drain, and every value must arrive exactly once.
func TestSegmentedConcurrentBurstDrain(t *testing.T) {
	q, err := nbqueue.New[int](
		nbqueue.WithAlgorithm(nbqueue.AlgorithmSegmented),
		nbqueue.WithUnbounded(),
		nbqueue.WithSegmentSize(8),
		nbqueue.WithMaxThreads(16),
	)
	if err != nil {
		t.Fatal(err)
	}
	const producers = 4
	const perProducer = 3000
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			s := q.Attach()
			defer s.Detach()
			for i := 0; i < perProducer; i++ {
				if err := s.Enqueue(p*perProducer + i); err != nil {
					t.Errorf("producer %d enqueue %d: %v", p, i, err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	seen := make([]bool, producers*perProducer)
	var mu sync.Mutex
	var cwg sync.WaitGroup
	for c := 0; c < 4; c++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			s := q.Attach()
			defer s.Detach()
			for {
				v, ok := s.Dequeue()
				if !ok {
					return
				}
				mu.Lock()
				if seen[v] {
					mu.Unlock()
					t.Errorf("value %d delivered twice", v)
					return
				}
				seen[v] = true
				mu.Unlock()
			}
		}()
	}
	cwg.Wait()
	for v, ok := range seen {
		if !ok {
			t.Fatalf("value %d lost", v)
		}
	}
}

func ExampleWithUnbounded() {
	q, _ := nbqueue.New[string](
		nbqueue.WithAlgorithm(nbqueue.AlgorithmSegmented),
		nbqueue.WithUnbounded(),
		nbqueue.WithSegmentSize(64),
	)
	s := q.Attach()
	defer s.Detach()
	// Bursts past any single segment grow the chain instead of shedding.
	for i := 0; i < 200; i++ {
		if err := s.Enqueue(fmt.Sprintf("job-%d", i)); err != nil {
			fmt.Println("unexpected:", err)
		}
	}
	n, _ := q.Len()
	segs, _ := q.Segments()
	fmt.Println(n, segs > 1)
	// Output: 200 true
}
