package nbqueue

import (
	"context"
	"time"

	"nbqueue/internal/trace"
)

// TraceRecord is one decoded flight-recorder entry, the public view of
// the internal fixed-size record. See WithTracing for the recording
// policy: which operations produce records and what the fields mean on
// sampled versus always-recorded outcomes.
type TraceRecord struct {
	// Time is the operation's start time (sampled records) or the
	// record's write time (always-recorded rare outcomes and events).
	Time time.Time `json:"time"`
	// Latency is the operation's wall latency; zero on records written
	// outside the sampling beat (rare outcomes carry timing only when
	// they also happened to be sampled) and on events.
	Latency time.Duration `json:"latency_ns"`
	// Kind is the operation: "enqueue", "dequeue", "enqueue-batch",
	// "dequeue-batch", or "event" for queue-lifecycle records.
	Kind string `json:"kind"`
	// Outcome says how the operation ended ("ok", "full", "contended",
	// "deadline", "overloaded", "rescued", "segment-shed") or which
	// lifecycle event fired ("segment-grow", "spare-hit", "spare-miss",
	// "scavenge").
	Outcome string `json:"outcome"`
	// Retries is the number of fruitless retry-loop iterations the
	// operation burned before ending.
	Retries uint32 `json:"retries"`
	// Spins is the backoff spin ceiling in effect when the record was
	// written — how hard adaptive backoff was braking (0 when backoff is
	// off).
	Spins uint32 `json:"spins"`
	// N is the element count for batch kinds and the magnitude for
	// events (live segments after a grow, records scavenged).
	N uint32 `json:"n,omitempty"`
	// Algorithm is the queue's display name, stamped at snapshot time.
	Algorithm string `json:"algorithm"`
}

// WithTracing attaches a flight recorder to the queue: a set of bounded
// lock-free ring buffers holding fixed-size per-operation records
// (kind, outcome, retries, backoff spins, latency) plus segment
// lifecycle events, readable at any time with TraceSnapshot. perRing
// sets each ring's record capacity (rounded up to a power of two; 0
// selects the default, 4096).
//
// Recording rides the same sampled path the WithMetrics histograms
// already gate: one in 2^5 operations per session records (with
// latency), so the steady-state cost is a branch on the hot path and
// one ring write per 32 operations. Outcomes that end a pathological
// operation — ErrContended, ErrDeadline, a starvation rescue — and the
// segment lifecycle (grow, spare-pool hit/miss, scavenge) are recorded
// unconditionally, so a postmortem sees every one of them; hot shed
// outcomes (ErrFull, ErrOverloaded, segment-watermark sheds) stay
// sampled so the recorder cannot become its own overload problem.
//
// Requires WithMetrics (the sampling beat lives in the metrics layer);
// New rejects the combination without it. Supported by the
// Evequoz-family algorithms (AlgorithmLLSC, AlgorithmCAS,
// AlgorithmSegmented) plus the payload layer's own admission sheds and
// scavenges on every algorithm. Without WithTracing the recording sites
// compile to a single nil-check branch: zero atomics, no clock reads.
func WithTracing(perRing int) Option {
	return func(c *config) {
		c.tracePerRing = perRing
		c.traceSet = true
	}
}

// TraceEnabled reports whether the queue was built with WithTracing.
func (q *Queue[T]) TraceEnabled() bool { return q.rec != nil }

// TraceSnapshot merges the flight recorder's rings into one
// time-ordered dump (oldest first). It is safe to call concurrently
// with operations: records being written during the merge are skipped
// and counted in TraceDropped rather than returned torn. Returns nil
// without WithTracing.
//
// The dump holds at most the rings' total capacity — the newest records
// per ring; older entries were overwritten and are visible only in
// TraceDropped. For always-recorded outcomes whose rings never wrapped,
// the per-outcome record counts reconcile exactly with the Metrics
// counters (Snapshot.ContendedOps, DeadlineAborts); sampled outcomes
// reconcile as a lower bound.
func (q *Queue[T]) TraceSnapshot() []TraceRecord {
	if q.rec == nil {
		return nil
	}
	algo := q.inner.Name()
	recs := q.rec.Snapshot()
	out := make([]TraceRecord, len(recs))
	for i, r := range recs {
		out[i] = TraceRecord{
			Time:      time.Unix(0, r.Start),
			Latency:   time.Duration(r.Latency),
			Kind:      r.Kind.String(),
			Outcome:   r.Outcome.String(),
			Retries:   r.Retries,
			Spins:     r.Spins,
			N:         r.N,
			Algorithm: algo,
		}
	}
	return out
}

// TraceDropped counts flight-recorder records that no TraceSnapshot can
// return anymore: entries overwritten by ring wrap-around plus
// snapshot-time copies discarded because a writer raced them. The count
// is monotonic; exporters publish it as nbq_trace_dropped_total. Always
// 0 without WithTracing.
func (q *Queue[T]) TraceDropped() uint64 { return q.rec.Dropped() }

// TraceWritten counts records ever written to the flight recorder.
// TraceWritten - TraceDropped is the number a snapshot can still
// return. Always 0 without WithTracing.
func (q *Queue[T]) TraceWritten() uint64 { return q.rec.Written() }

// SetTraceLogContext links the flight recorder to Go's execution
// tracer: while runtime/trace is collecting, rare-outcome records
// (contended, deadline, rescued, spare misses …) additionally emit a
// trace.Log event under ctx — typically a context carrying a
// runtime/trace.Task per queue — so a stall in `go tool trace` is
// attributable to the specific operation's retry storm. nil detaches.
// No-op without WithTracing.
func (q *Queue[T]) SetTraceLogContext(ctx context.Context) { q.rec.SetLogContext(ctx) }

// traceRecorder exposes the internal recorder to the package's own
// tooling (fifosoak's stats server serves it at /debug/fifotrace).
func (q *Queue[T]) traceRecorder() *trace.Recorder { return q.rec }
