package nbqueue_test

import (
	"sync"
	"testing"
	"time"

	"nbqueue"
)

func TestWithTracingRequiresMetrics(t *testing.T) {
	_, err := nbqueue.New[int](nbqueue.WithTracing(0))
	if err == nil {
		t.Fatal("WithTracing without WithMetrics should be rejected")
	}
	_, err = nbqueue.New[int](nbqueue.WithMetrics(nbqueue.NewMetrics()), nbqueue.WithTracing(-1))
	if err == nil {
		t.Fatal("negative WithTracing should be rejected")
	}
}

func TestTraceDisabledIsZero(t *testing.T) {
	q, err := nbqueue.New[int]()
	if err != nil {
		t.Fatal(err)
	}
	if q.TraceEnabled() {
		t.Fatal("tracing should be off by default")
	}
	if got := q.TraceSnapshot(); got != nil {
		t.Fatalf("TraceSnapshot without tracing = %v, want nil", got)
	}
	if q.TraceDropped() != 0 || q.TraceWritten() != 0 {
		t.Fatal("trace counters should be 0 without tracing")
	}
	s := q.Attach()
	defer s.Detach()
	if err := s.Enqueue(1); err != nil {
		t.Fatal(err)
	}
}

func TestTraceSnapshotRecordsOutcomes(t *testing.T) {
	for _, algo := range []nbqueue.Algorithm{
		nbqueue.AlgorithmLLSC, nbqueue.AlgorithmCAS, nbqueue.AlgorithmSegmented,
	} {
		t.Run(string(algo), func(t *testing.T) {
			m := nbqueue.NewMetrics()
			q, err := nbqueue.New[int](
				nbqueue.WithAlgorithm(algo),
				nbqueue.WithCapacity(64),
				nbqueue.WithMetrics(m),
				nbqueue.WithTracing(256),
			)
			if err != nil {
				t.Fatal(err)
			}
			if !q.TraceEnabled() {
				t.Fatal("tracing should be on")
			}
			s := q.Attach()
			defer s.Detach()
			// Well past the 1-in-32 sampling beat in both directions.
			for round := 0; round < 40; round++ {
				for i := 0; i < 40; i++ {
					if err := s.Enqueue(i); err != nil {
						t.Fatal(err)
					}
				}
				for i := 0; i < 40; i++ {
					if _, ok := s.Dequeue(); !ok {
						t.Fatal("dequeue failed")
					}
				}
			}
			recs := q.TraceSnapshot()
			if len(recs) == 0 {
				t.Fatal("expected sampled records after 3200 ops")
			}
			kinds := map[string]int{}
			for i, r := range recs {
				kinds[r.Kind]++
				if r.Algorithm != q.Algorithm() {
					t.Fatalf("record algorithm %q, want %q", r.Algorithm, q.Algorithm())
				}
				// Segment lifecycle events (grow, spare hits) are fine on
				// evq-seg; operation records must all be ok.
				if r.Kind != "event" && r.Outcome != "ok" {
					t.Fatalf("unexpected outcome %q on an uncontended run", r.Outcome)
				}
				if i > 0 && r.Time.Before(recs[i-1].Time) {
					t.Fatal("snapshot not time-ordered")
				}
			}
			if kinds["enqueue"] == 0 || kinds["dequeue"] == 0 {
				t.Fatalf("want both enqueue and dequeue records, got %v", kinds)
			}
			if q.TraceWritten() == 0 {
				t.Fatal("TraceWritten should be nonzero")
			}
		})
	}
}

func TestTraceRecordsOverloadShed(t *testing.T) {
	m := nbqueue.NewMetrics()
	q, err := nbqueue.New[int](
		nbqueue.WithCapacity(64),
		nbqueue.WithMetrics(m),
		nbqueue.WithTracing(256),
		nbqueue.WithWatermarks(4, 8),
	)
	if err != nil {
		t.Fatal(err)
	}
	s := q.Attach()
	defer s.Detach()
	sheds := 0
	// Fill past the high watermark, then hammer the shedding path well
	// past the sampling beat so at least one shed records.
	for i := 0; i < 16 && err == nil; i++ {
		err = s.Enqueue(i)
	}
	if err != nbqueue.ErrOverloaded {
		t.Fatalf("want ErrOverloaded, got %v", err)
	}
	for i := 0; i < 256; i++ {
		if e := s.Enqueue(i); e == nbqueue.ErrOverloaded {
			sheds++
		}
	}
	if sheds == 0 {
		t.Fatal("no sheds observed")
	}
	found := 0
	for _, r := range q.TraceSnapshot() {
		if r.Outcome == "overloaded" {
			found++
		}
	}
	if found == 0 {
		t.Fatal("expected at least one sampled overloaded record")
	}
	if found > sheds+1 {
		t.Fatalf("more overloaded records (%d) than sheds (%d)", found, sheds)
	}
}

func TestTraceRecordsContendedAlways(t *testing.T) {
	m := nbqueue.NewMetrics()
	q, err := nbqueue.New[int](
		nbqueue.WithCapacity(64),
		nbqueue.WithMetrics(m),
		nbqueue.WithTracing(1024),
		nbqueue.WithRetryBudget(1),
	)
	if err != nil {
		t.Fatal(err)
	}
	// Single-session runs cannot lose CAS races, so drive two sessions
	// from the harness's side: exercised properly by the concurrent
	// reconciliation drill; here just assert the plumbing is wired by
	// checking contended records equal the counter when any occur.
	done := make(chan struct{})
	go func() {
		defer close(done)
		s := q.Attach()
		defer s.Detach()
		for i := 0; i < 20000; i++ {
			if s.Enqueue(i) != nil {
				s.Dequeue()
			}
		}
	}()
	s := q.Attach()
	for i := 0; i < 20000; i++ {
		if s.Enqueue(i) != nil {
			s.Dequeue()
		}
	}
	s.Detach()
	<-done
	snap := m.Snapshot()
	contended := uint64(0)
	for _, r := range q.TraceSnapshot() {
		if r.Outcome == "contended" {
			contended++
		}
	}
	// Contended outcomes record unconditionally; with rings far larger
	// than the op count nothing wrapped, so the counts must reconcile.
	if q.TraceDropped() == 0 && contended != snap.Contended {
		t.Fatalf("trace contended=%d, counter=%d", contended, snap.Contended)
	}
}

// TestTraceSnapshotRacesDetach merges trace snapshots while sessions
// attach, operate, and detach underneath — the seqlock rings, handle
// recycling, and segment event hooks must all stay race-free. The CI
// race job runs this under -race; plain runs still assert merge
// ordering never tears.
func TestTraceSnapshotRacesDetach(t *testing.T) {
	m := nbqueue.NewMetrics()
	// Segmented: Detach races segment-grow/spare events, not just op
	// records.
	q, err := nbqueue.New[int](
		nbqueue.WithAlgorithm(nbqueue.AlgorithmSegmented),
		nbqueue.WithMetrics(m),
		nbqueue.WithTracing(128),
	)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := q.Attach()
				for i := 0; i < 64; i++ {
					if s.Enqueue(i) == nil {
						s.Dequeue()
					}
				}
				s.Detach()
			}
		}()
	}
	deadline := time.Now().Add(300 * time.Millisecond)
	snaps := 0
	for time.Now().Before(deadline) {
		recs := q.TraceSnapshot()
		snaps++
		for i := 1; i < len(recs); i++ {
			if recs[i].Time.Before(recs[i-1].Time) {
				t.Fatalf("snapshot %d not time-ordered at %d", snaps, i)
			}
		}
	}
	close(stop)
	wg.Wait()
	if snaps == 0 {
		t.Fatal("no snapshots merged")
	}
	if q.TraceWritten() == 0 {
		t.Fatal("no records written under churn")
	}
}

// BenchmarkTraceOverhead — the T-trace tier in EXPERIMENTS.md: the
// uncontended enqueue/dequeue pair bare, with counter/histogram
// instrumentation, and with the flight recorder sampling on top. The
// tracing budget is +2% over counters-only.
func BenchmarkTraceOverhead(b *testing.B) {
	run := func(b *testing.B, opts ...nbqueue.Option) {
		q, err := nbqueue.New[int](append([]nbqueue.Option{
			nbqueue.WithCapacity(1024),
		}, opts...)...)
		if err != nil {
			b.Fatal(err)
		}
		s := q.Attach()
		defer s.Detach()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := s.Enqueue(i); err != nil {
				b.Fatal(err)
			}
			if _, ok := s.Dequeue(); !ok {
				b.Fatal("empty")
			}
		}
	}
	b.Run("bare", func(b *testing.B) { run(b) })
	b.Run("counters", func(b *testing.B) {
		run(b, nbqueue.WithMetrics(nbqueue.NewMetrics()))
	})
	b.Run("tracing", func(b *testing.B) {
		run(b, nbqueue.WithMetrics(nbqueue.NewMetrics()), nbqueue.WithTracing(0))
	})
}
